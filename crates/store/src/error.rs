//! The [`StoreError`] taxonomy.
//!
//! Every way a store file can be wrong has a variant that names the
//! field and the values in conflict, so a corrupted fleet artifact is
//! diagnosable from the error line alone.  The reader is **total**:
//! hostile bytes can reach any variant here but can never reach a
//! panic — `tests/store_robustness.rs` exercises truncation at every
//! byte prefix and corruption at every byte offset to pin that.

use crate::format::SectionId;
use std::fmt;

/// Why a store file could not be read (or written).
#[derive(Debug)]
pub enum StoreError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// The file is shorter than the fixed header.
    TooShort {
        /// Actual file length in bytes.
        actual: u64,
    },
    /// The magic bytes are not `DPSTORE\0` — not a store file at all.
    BadMagic {
        /// The first eight bytes found.
        found: [u8; 8],
    },
    /// The format version is not one this reader supports.
    UnsupportedVersion {
        /// Version recorded in the file.
        found: u32,
    },
    /// The endianness tag does not read back as the little-endian
    /// constant — the file was written with a different byte order.
    BadEndianness {
        /// The tag as read little-endian.
        found: u32,
    },
    /// The header checksum does not match the header bytes.
    HeaderChecksum {
        /// Checksum recorded in the header.
        stored: u64,
        /// Checksum computed over the header bytes.
        computed: u64,
    },
    /// The header's recorded file length disagrees with the actual file
    /// size (truncation or trailing garbage).
    LengthMismatch {
        /// Length recorded in the header.
        stored: u64,
        /// Actual length.
        actual: u64,
    },
    /// The TOC checksum does not match the TOC bytes.
    TocChecksum {
        /// Checksum recorded in the header.
        stored: u64,
        /// Checksum computed over the TOC bytes.
        computed: u64,
    },
    /// A structural TOC/layout rule is violated (wrong section order,
    /// misaligned or non-canonical offset, reserved field nonzero, …).
    BadLayout {
        /// Which rule failed.
        detail: &'static str,
        /// The offending value.
        value: u64,
    },
    /// A padding byte between sections is nonzero.
    NonZeroPadding {
        /// File offset of the first nonzero padding byte.
        offset: u64,
    },
    /// A section checksum does not match its payload bytes.
    SectionChecksum {
        /// Which section.
        section: SectionId,
        /// Checksum recorded in the TOC.
        stored: u64,
        /// Checksum computed over the payload.
        computed: u64,
    },
    /// A section payload length disagrees with the META geometry.
    BadSectionLength {
        /// Which section.
        section: SectionId,
        /// Length implied by META (bytes).
        expected: u64,
        /// Length recorded in the TOC.
        found: u64,
    },
    /// A META field is out of range or inconsistent.
    BadMeta {
        /// Which field.
        field: &'static str,
        /// The offending value (f64 params are reported as raw bits).
        value: u64,
    },
    /// A PERMS row is not a permutation of `0..k`.
    BadPermutation {
        /// Database row index.
        row: usize,
    },
    /// A VECTORS coordinate is NaN — no successfully built index can
    /// contain one (the build would have panicked ranking a NaN
    /// distance), and loading it would arm a query-time panic.
    NaNCoordinate {
        /// Flat index into the VECTORS payload.
        index: usize,
    },
    /// The SITES_T payload is not the bitwise transpose of the site
    /// rows gathered from VECTORS — the sections contradict each other.
    InconsistentSites {
        /// First disagreeing flat index into the SITES_T payload.
        index: usize,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::TooShort { actual } => {
                write!(f, "store file is {actual} bytes, shorter than the 64-byte header")
            }
            StoreError::BadMagic { found } => {
                write!(f, "not a distperm store (magic bytes {found:02x?})")
            }
            StoreError::UnsupportedVersion { found } => write!(
                f,
                "store format version {found} is not supported (this reader reads version {})",
                crate::format::FORMAT_VERSION
            ),
            StoreError::BadEndianness { found } => write!(
                f,
                "store endianness tag 0x{found:08x} is not the little-endian constant 0x{:08x}",
                crate::format::ENDIAN_TAG
            ),
            StoreError::HeaderChecksum { stored, computed } => write!(
                f,
                "header checksum mismatch (stored {stored:016x}, computed {computed:016x})"
            ),
            StoreError::LengthMismatch { stored, actual } => write!(
                f,
                "store records {stored} bytes but the file holds {actual} (truncated or padded)"
            ),
            StoreError::TocChecksum { stored, computed } => {
                write!(f, "TOC checksum mismatch (stored {stored:016x}, computed {computed:016x})")
            }
            StoreError::BadLayout { detail, value } => {
                write!(f, "store layout violation: {detail} (value {value})")
            }
            StoreError::NonZeroPadding { offset } => {
                write!(f, "nonzero padding byte at file offset {offset}")
            }
            StoreError::SectionChecksum { section, stored, computed } => write!(
                f,
                "{section} section checksum mismatch (stored {stored:016x}, \
                 computed {computed:016x})"
            ),
            StoreError::BadSectionLength { section, expected, found } => {
                write!(f, "{section} section holds {found} bytes but META implies {expected}")
            }
            StoreError::BadMeta { field, value } => {
                write!(f, "bad META field {field} (value {value})")
            }
            StoreError::BadPermutation { row } => {
                write!(f, "PERMS row {row} is not a permutation of 0..k")
            }
            StoreError::NaNCoordinate { index } => {
                write!(f, "NaN coordinate at VECTORS element {index}")
            }
            StoreError::InconsistentSites { index } => {
                write!(f, "SITES_T element {index} is not the transpose of the gathered site rows")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}
