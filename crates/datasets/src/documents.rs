//! Synthetic document term-vectors (the `long`/`short` analogues).
//!
//! The SISAP `long` database holds 1,265 news-article feature vectors and
//! `short` holds 25,276 short-document vectors, both compared by the
//! angle between TF-IDF-style term vectors.  The synthetic analogue draws
//! term indices from a Zipf distribution over a finite vocabulary with a
//! topic mixture (documents drawn from the same topic share heavy terms),
//! giving the angular clustering that makes permutation counts collapse
//! far below both k! and n — the paper's headline observation for `long`
//! (261 distinct permutations from 1,265 documents at k = 12).

use dp_metric::SparseVec;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Parameters for the document generator.
#[derive(Debug, Clone, Copy)]
pub struct DocProfile {
    /// Vocabulary size.
    pub vocab: u32,
    /// Mean number of distinct terms per document.
    pub mean_terms: usize,
    /// Number of latent topics.
    pub topics: usize,
    /// Zipf exponent for term frequencies.
    pub zipf_s: f64,
}

/// Profile matching the `long` database (full news articles).
pub fn long_profile() -> DocProfile {
    DocProfile { vocab: 30_000, mean_terms: 300, topics: 12, zipf_s: 1.1 }
}

/// Profile matching the `short` database (short documents).
pub fn short_profile() -> DocProfile {
    DocProfile { vocab: 12_000, mean_terms: 25, topics: 40, zipf_s: 1.05 }
}

/// Generates `n` sparse documents under `profile`.
pub fn generate_documents(profile: DocProfile, n: usize, seed: u64) -> Vec<SparseVec> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Each topic is a random permutation-offset into the Zipf ranking, so
    // topics share the global head but emphasise different tails.
    let topic_offsets: Vec<u32> =
        (0..profile.topics).map(|_| rng.random_range(0..profile.vocab / 2)).collect();
    (0..n)
        .map(|_| {
            let topic = topic_offsets[rng.random_range(0..topic_offsets.len())];
            let terms = sample_doc_len(profile.mean_terms, &mut rng);
            let mut pairs = Vec::with_capacity(terms);
            for _ in 0..terms {
                // 70% topic-local terms drawn from a narrow Zipf band at
                // the topic's offset (same-topic documents share heavy
                // terms), 30% global head terms.
                let topical = rng.random_bool(0.7);
                let (base, span) =
                    if topical { (topic, 150.0) } else { (0, profile.vocab as f64 / 3.0) };
                let rank = sample_zipf(span, profile.zipf_s, &mut rng);
                let idx = (base + rank).min(profile.vocab - 1);
                // Topic terms carry more weight (they are the document's
                // subject), which tightens same-topic angles.
                let weight = if topical { 2.0 } else { 1.0 } + rng.random::<f64>();
                pairs.push((idx, weight));
            }
            SparseVec::new(pairs)
        })
        .collect()
}

fn sample_doc_len(mean: usize, rng: &mut StdRng) -> usize {
    let jitter = 0.5 + rng.random::<f64>();
    ((mean as f64 * jitter) as usize).max(3)
}

/// Approximate Zipf sampler via inverse-CDF of the continuous Pareto
/// envelope (exact Zipf is unnecessary for a synthetic workload).
fn sample_zipf(max: f64, s: f64, rng: &mut StdRng) -> u32 {
    let u: f64 = rng.random::<f64>().max(1e-12);
    let x = if (s - 1.0).abs() < 1e-9 {
        max.powf(u) - 1.0
    } else {
        let a = 1.0 - s;
        (((max.powf(a) - 1.0) * u + 1.0).powf(1.0 / a)) - 1.0
    };
    x.max(0.0).min(max - 1.0) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_metric::{CosineDistance, Metric};

    #[test]
    fn documents_have_profile_shape() {
        let docs = generate_documents(short_profile(), 200, 3);
        assert_eq!(docs.len(), 200);
        for d in &docs {
            assert!(d.nnz() >= 2, "document too sparse");
            assert!(d.norm() > 0.0);
        }
    }

    #[test]
    fn long_documents_are_denser_than_short() {
        let long = generate_documents(long_profile(), 100, 5);
        let short = generate_documents(short_profile(), 100, 5);
        let mean_nnz = |ds: &[SparseVec]| {
            ds.iter().map(dp_metric::SparseVec::nnz).sum::<usize>() as f64 / ds.len() as f64
        };
        assert!(mean_nnz(&long) > 4.0 * mean_nnz(&short));
    }

    #[test]
    fn deterministic() {
        let a = generate_documents(short_profile(), 50, 7);
        let b = generate_documents(short_profile(), 50, 7);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.indices(), y.indices());
        }
    }

    #[test]
    fn zipf_head_is_heavy() {
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<u32> = (0..20_000).map(|_| sample_zipf(10_000.0, 1.1, &mut rng)).collect();
        let head = samples.iter().filter(|&&x| x < 100).count();
        assert!(head > samples.len() / 3, "head {head} of {} — Zipf head too light", samples.len());
        assert!(samples.iter().any(|&x| x > 1000), "no tail at all");
    }

    #[test]
    fn same_topic_documents_are_angularly_closer() {
        // Statistical check: the minimum pairwise angle among documents
        // should be much smaller than the typical angle (topic structure),
        // i.e. the data is clustered rather than isotropic.
        let docs = generate_documents(short_profile(), 120, 9);
        let mut min_d = f64::INFINITY;
        let mut sum = 0.0;
        let mut cnt = 0usize;
        for i in 0..docs.len() {
            for j in (i + 1)..docs.len() {
                let d = CosineDistance.distance(&docs[i], &docs[j]).get();
                min_d = min_d.min(d);
                sum += d;
                cnt += 1;
            }
        }
        let mean = sum / cnt as f64;
        assert!(min_d < 0.65 * mean, "min {min_d} mean {mean}");
    }
}
