//! Flat (row-major, contiguous) vector storage: [`VectorSet`].
//!
//! Every vector workload in this workspace historically routed through
//! `Vec<Vec<f64>>` — one heap allocation per point, pointer-chased on
//! every metric evaluation.  [`VectorSet`] stores n d-dimensional points
//! as one contiguous `Vec<f64>` of length `n·d`:
//!
//! * `row(i)` is a zero-cost `&[f64]` view — the existing `Metric<[f64]>`
//!   implementations apply unchanged;
//! * the whole database streams linearly, which the batched
//!   distance-permutation kernels (`dp_metric::batch`,
//!   `dp_permutation::compute::database_permutations_flat`) exploit;
//! * conversions to/from the nested representation and `FromIterator`
//!   keep the old API reachable as a thin compatibility shim.
//!
//! **When to prefer it:** any bulk scan over real-vector data — index
//! builds, permutation counting, dataset generation at Table 3 scale.
//! The nested representation remains the right choice for heterogeneous
//! or string data, and for call sites that need `Vec<f64>` ownership per
//! point.
//!
//! Building in parallel: [`VectorSet::generate_parallel`] fills rows on
//! scoped threads from a per-row closure, so results are deterministic
//! regardless of thread count.

use std::ops::Index;

/// n points of fixed dimension d in one contiguous row-major buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct VectorSet {
    dim: usize,
    data: Vec<f64>,
}

impl VectorSet {
    /// An empty set of points of dimension `dim`.
    pub fn new(dim: usize) -> Self {
        VectorSet { dim, data: Vec::new() }
    }

    /// An empty set with capacity for `n` points of dimension `dim`.
    pub fn with_capacity(dim: usize, n: usize) -> Self {
        VectorSet { dim, data: Vec::with_capacity(dim * n) }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len()` is not a multiple of `dim` (for `dim = 0`
    /// only an empty buffer is accepted).
    pub fn from_raw(dim: usize, data: Vec<f64>) -> Self {
        if dim == 0 {
            assert!(data.is_empty(), "dim = 0 with non-empty data");
        } else {
            assert_eq!(data.len() % dim, 0, "data length not a multiple of dim = {dim}");
        }
        VectorSet { dim, data }
    }

    /// Copies a nested point list into flat storage.
    ///
    /// All rows must share the dimension of the first row; an empty list
    /// yields an empty 0-dimensional set.
    ///
    /// # Panics
    /// Panics on ragged input.
    pub fn from_nested(points: &[Vec<f64>]) -> Self {
        let dim = points.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(dim * points.len());
        for p in points {
            assert_eq!(p.len(), dim, "ragged nested input ({} vs {dim})", p.len());
            data.extend_from_slice(p);
        }
        VectorSet { dim, data }
    }

    /// Copies back out to the nested representation.
    pub fn to_nested(&self) -> Vec<Vec<f64>> {
        self.rows().map(<[f64]>::to_vec).collect()
    }

    /// Appends one point.
    ///
    /// # Panics
    /// Panics if `row.len() != self.dim()`.
    pub fn push(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.dim, "pushed row has dimension {} != {}", row.len(), self.dim);
        self.data.extend_from_slice(row);
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len().checked_div(self.dim).unwrap_or(0)
    }

    /// True iff there are no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Point dimension d.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The `i`-th point as a slice view.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Iterator over all point views.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[f64]> {
        self.data.chunks_exact(self.dim.max(1))
    }

    /// The whole row-major buffer (length `len() * dim()`).
    #[inline]
    pub fn as_flat(&self) -> &[f64] {
        &self.data
    }

    /// Gathers the given rows into a new set (e.g. site selection).
    ///
    /// # Panics
    /// Panics if any id is out of range.
    pub fn gather(&self, ids: &[usize]) -> VectorSet {
        let mut out = VectorSet::with_capacity(self.dim, ids.len());
        for &i in ids {
            out.push(self.row(i));
        }
        out
    }

    /// Builds n rows by filling each from `fill(row_index, row)`.
    pub fn generate(n: usize, dim: usize, mut fill: impl FnMut(usize, &mut [f64])) -> Self {
        let mut data = vec![0.0; n * dim];
        for (i, row) in data.chunks_exact_mut(dim.max(1)).enumerate() {
            fill(i, row);
        }
        VectorSet { dim, data }
    }

    /// Parallel [`Self::generate`]: rows are filled on `threads` scoped
    /// workers.  `fill` receives the global row index, so the result is
    /// identical for every thread count.
    pub fn generate_parallel(
        n: usize,
        dim: usize,
        threads: usize,
        fill: impl Fn(usize, &mut [f64]) + Sync,
    ) -> Self {
        let threads = threads.max(1).min(n.max(1));
        if threads == 1 || n * dim < 1 << 14 {
            return Self::generate(n, dim, fill);
        }
        let mut data = vec![0.0; n * dim];
        let rows_per = n.div_ceil(threads);
        let fill = &fill;
        crossbeam::thread::scope(|scope| {
            for (chunk_idx, chunk) in data.chunks_mut(rows_per * dim).enumerate() {
                let first_row = chunk_idx * rows_per;
                scope.spawn(move |_| {
                    for (i, row) in chunk.chunks_exact_mut(dim).enumerate() {
                        fill(first_row + i, row);
                    }
                });
            }
        })
        .expect("generate_parallel scope");
        VectorSet { dim, data }
    }
}

impl Index<usize> for VectorSet {
    type Output = [f64];

    #[inline]
    fn index(&self, i: usize) -> &[f64] {
        self.row(i)
    }
}

impl FromIterator<Vec<f64>> for VectorSet {
    fn from_iter<I: IntoIterator<Item = Vec<f64>>>(iter: I) -> Self {
        let mut it = iter.into_iter();
        match it.next() {
            None => VectorSet::new(0),
            Some(first) => {
                let mut set = VectorSet::new(first.len());
                set.push(&first);
                for row in it {
                    set.push(&row);
                }
                set
            }
        }
    }
}

impl<'a> FromIterator<&'a [f64]> for VectorSet {
    fn from_iter<I: IntoIterator<Item = &'a [f64]>>(iter: I) -> Self {
        let mut it = iter.into_iter();
        match it.next() {
            None => VectorSet::new(0),
            Some(first) => {
                let mut set = VectorSet::new(first.len());
                set.push(first);
                for row in it {
                    set.push(row);
                }
                set
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested_flat_nested() {
        let nested = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let flat = VectorSet::from_nested(&nested);
        assert_eq!(flat.len(), 3);
        assert_eq!(flat.dim(), 2);
        assert_eq!(flat.row(1), &[3.0, 4.0]);
        assert_eq!(flat[2], [5.0, 6.0]);
        assert_eq!(flat.to_nested(), nested);
        let collected: VectorSet = nested.iter().cloned().collect();
        assert_eq!(collected, flat);
        let by_ref: VectorSet = flat.rows().collect();
        assert_eq!(by_ref, flat);
    }

    #[test]
    fn gather_selects_rows() {
        let set = VectorSet::from_raw(1, vec![0.0, 10.0, 20.0, 30.0]);
        let picked = set.gather(&[3, 0, 3]);
        assert_eq!(picked.as_flat(), &[30.0, 0.0, 30.0]);
    }

    #[test]
    fn generate_parallel_matches_sequential() {
        let fill = |i: usize, row: &mut [f64]| {
            for (c, slot) in row.iter_mut().enumerate() {
                *slot = (i * 31 + c) as f64;
            }
        };
        let seq = VectorSet::generate(5000, 4, fill);
        for threads in [1, 2, 3, 8] {
            assert_eq!(VectorSet::generate_parallel(5000, 4, threads, fill), seq);
        }
    }

    #[test]
    fn empty_and_zero_dim_edge_cases() {
        let empty = VectorSet::new(3);
        assert_eq!(empty.len(), 0);
        assert!(empty.is_empty());
        assert_eq!(empty.rows().count(), 0);
        let zero_dim: VectorSet = Vec::<Vec<f64>>::new().into_iter().collect();
        assert_eq!(zero_dim.len(), 0);
        assert_eq!(zero_dim.dim(), 0);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_nested_rejected() {
        let _ = VectorSet::from_nested(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn bad_raw_length_rejected() {
        let _ = VectorSet::from_raw(2, vec![1.0, 2.0, 3.0]);
    }
}
