//! Synthetic gene-fragment strings (the `listeria` analogue).
//!
//! The SISAP `listeria` database holds 20,660 gene sequences under edit
//! distance, with a strikingly low intrinsic dimensionality (ρ ≈ 0.89 in
//! Table 2): edit distance between long random sequences is dominated by
//! the *length difference*, which is nearly one-dimensional.  The
//! synthetic analogue reproduces that: fragments over {A,C,G,T} with a
//! broad length distribution and weak content correlation (fragments are
//! mutated copies of a small pool of master sequences, as gene families
//! are).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const BASES: &[u8] = b"acgt";

/// Generates `n` gene fragments.
///
/// `max_len` bounds the fragment length (the SISAP listeria sequences vary
/// from tens to thousands of bases; the default roster uses 400 to keep
/// edit-distance costs manageable at full n).
pub fn generate_fragments(n: usize, max_len: usize, seed: u64) -> Vec<String> {
    assert!(max_len >= 8);
    let mut rng = StdRng::seed_from_u64(seed);
    // A small pool of master genes; each fragment is a mutated window of
    // one master, giving family structure like real gene databases.
    let masters: Vec<Vec<u8>> = (0..16)
        .map(|_| (0..max_len * 2).map(|_| BASES[rng.random_range(0..4)]).collect())
        .collect();
    (0..n)
        .map(|_| {
            let master = &masters[rng.random_range(0..masters.len())];
            // Length: squared uniform pushes mass toward short fragments,
            // giving the broad, skewed length profile of gene data.
            let u: f64 = rng.random();
            let len = (8.0 + u * u * (max_len as f64 - 8.0)) as usize;
            let start = rng.random_range(0..master.len() - len);
            let mut frag: Vec<u8> = master[start..start + len].to_vec();
            // Point mutations at ~5%.
            for b in &mut frag {
                if rng.random_bool(0.05) {
                    *b = BASES[rng.random_range(0..4)];
                }
            }
            String::from_utf8(frag).expect("ACGT is UTF-8")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rho::intrinsic_dimensionality;
    use dp_metric::Levenshtein;

    #[test]
    fn fragments_have_expected_alphabet_and_lengths() {
        let frags = generate_fragments(300, 200, 5);
        assert_eq!(frags.len(), 300);
        for f in &frags {
            assert!((8..=200).contains(&f.len()));
            assert!(f.bytes().all(|b| BASES.contains(&b)));
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate_fragments(50, 100, 1), generate_fragments(50, 100, 1));
        assert_ne!(generate_fragments(50, 100, 1), generate_fragments(50, 100, 2));
    }

    #[test]
    fn length_distribution_is_broad_and_skewed() {
        let frags = generate_fragments(3000, 400, 9);
        let lens: Vec<usize> = frags.iter().map(std::string::String::len).collect();
        let short = lens.iter().filter(|&&l| l < 100).count();
        let long = lens.iter().filter(|&&l| l > 300).count();
        assert!(short > long, "short {short} long {long}");
        assert!(long > 0);
    }

    #[test]
    fn intrinsic_dimensionality_is_low() {
        // The listeria signature: length-difference dominance gives a low
        // rho (paper: 0.894).  Accept anything clearly below uniform
        // vectors' range.
        let frags = generate_fragments(800, 400, 11);
        let rho = intrinsic_dimensionality(&Levenshtein, &frags, 1500, 3);
        assert!(rho < 2.5, "rho = {rho}");
        assert!(rho > 0.2, "rho = {rho}");
    }
}
