//! Synthetic NASA feature vectors (the `nasa` analogue).
//!
//! The SISAP `nasa` database holds 40,150 twenty-dimensional feature
//! vectors extracted from NASA imagery, with ρ ≈ 5.2 and permutation
//! counts that the paper places "between three and four" Euclidean
//! dimensions.  The analogue is a low-rank construction: points from a
//! ~5-dimensional latent Gaussian, embedded into 20 dimensions through a
//! fixed random linear map plus small ambient noise.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Embedding dimension, matching the SISAP database.
pub const NASA_DIMS: usize = 20;
/// Latent (intrinsic) dimension of the generator.
pub const NASA_LATENT: usize = 5;

/// Generates `n` NASA-like feature vectors.
pub fn generate_features(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Fixed random embedding matrix (NASA_LATENT x NASA_DIMS).
    let embed: Vec<Vec<f64>> = (0..NASA_LATENT)
        .map(|_| (0..NASA_DIMS).map(|_| crate::vectors::sample_normal(&mut rng)).collect())
        .collect();
    (0..n)
        .map(|_| {
            let latent: Vec<f64> =
                (0..NASA_LATENT).map(|_| crate::vectors::sample_normal(&mut rng)).collect();
            (0..NASA_DIMS)
                .map(|j| {
                    let signal: f64 = (0..NASA_LATENT).map(|i| latent[i] * embed[i][j]).sum();
                    signal + 0.05 * crate::vectors::sample_normal(&mut rng)
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rho::intrinsic_dimensionality;
    use dp_metric::L2;

    #[test]
    fn shape() {
        let fs = generate_features(200, 1);
        assert_eq!(fs.len(), 200);
        assert!(fs.iter().all(|f| f.len() == NASA_DIMS));
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate_features(20, 9), generate_features(20, 9));
    }

    #[test]
    fn intrinsic_dimensionality_near_latent_rank() {
        // Paper: rho = 5.186 for nasa.  The low-rank analogue should land
        // in the same band, well below the 20 embedding dimensions.
        let fs = generate_features(800, 3);
        let rho = intrinsic_dimensionality(&L2, &fs, 1500, 5);
        assert!(rho > 2.0 && rho < 9.0, "rho = {rho}");
    }

    #[test]
    fn coordinates_are_correlated() {
        // Low-rank structure: the covariance between two coordinates
        // driven by the same latent factors should be far from zero for
        // at least some pairs.
        let fs = generate_features(4000, 5);
        let mean: Vec<f64> = (0..NASA_DIMS)
            .map(|j| fs.iter().map(|f| f[j]).sum::<f64>() / fs.len() as f64)
            .collect();
        let mut max_corr: f64 = 0.0;
        for a in 0..NASA_DIMS {
            for b in (a + 1)..NASA_DIMS {
                let (mut cab, mut va, mut vb) = (0.0, 0.0, 0.0);
                for f in &fs {
                    let (da, db) = (f[a] - mean[a], f[b] - mean[b]);
                    cab += da * db;
                    va += da * da;
                    vb += db * db;
                }
                max_corr = max_corr.max((cab / (va.sqrt() * vb.sqrt())).abs());
            }
        }
        assert!(max_corr > 0.3, "max |corr| = {max_corr}");
    }
}
