//! SISAP metric-space library file formats.
//!
//! The paper's experiments run on the sample databases shipped with the
//! SISAP library (Figueroa–Navarro–Chávez): vector sets stored as an
//! ASCII header `dim n` followed by one whitespace-separated row per
//! element, and string sets stored one string per line.  This module
//! reads and writes both, so the synthetic analogues in this crate can be
//! exported for external tools and — if a user has the original SISAP
//! archives — the real databases can be loaded and measured with the same
//! harness (`distperm count --vectors/--strings`).
//!
//! All readers validate eagerly and report the offending line; vectors
//! must be finite (NaN/∞ would break the total order on distances).

use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Errors from reading a SISAP-format file.
#[derive(Debug)]
pub enum SisapIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural or numeric problem, with 1-based line number.
    Parse {
        /// Line where the problem was found (1-based; 0 = missing content).
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for SisapIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SisapIoError::Io(e) => write!(f, "i/o error: {e}"),
            SisapIoError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for SisapIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SisapIoError::Io(e) => Some(e),
            SisapIoError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for SisapIoError {
    fn from(e: io::Error) -> Self {
        SisapIoError::Io(e)
    }
}

fn parse_err(line: usize, message: impl Into<String>) -> SisapIoError {
    SisapIoError::Parse { line, message: message.into() }
}

/// Writes a vector database: header `dim n`, then one row per vector.
///
/// # Panics
/// Panics if any vector's length differs from `dim` or any coordinate is
/// non-finite — those are programming errors in the caller, not data
/// errors.
pub fn write_vectors<W: Write>(w: &mut W, dim: usize, vectors: &[Vec<f64>]) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    writeln!(w, "{dim} {}", vectors.len())?;
    for v in vectors {
        assert_eq!(v.len(), dim, "vector length {} != declared dim {dim}", v.len());
        let mut first = true;
        for &x in v {
            assert!(x.is_finite(), "non-finite coordinate {x}");
            if !first {
                write!(w, " ")?;
            }
            // 17 significant digits: lossless f64 round-trip.
            write!(w, "{x:.17e}")?;
            first = false;
        }
        writeln!(w)?;
    }
    w.flush()
}

/// Reads a vector database written by [`write_vectors`] (or by the SISAP
/// library's tools).  Returns `(dim, vectors)`.
///
/// Blank lines (including a trailing newline or CRLF line endings) are
/// tolerated; every row must have exactly `dim` finite coordinates and
/// the row count must match the header — a truncated file is an error,
/// never a silently shorter database.
///
/// Shares its parser with [`read_vectors_flat`], so the nested and flat
/// readers are **byte-equivalent by construction**: the same input
/// yields the same coordinates (bit-for-bit) or the same error at the
/// same line.
pub fn read_vectors<R: BufRead>(r: &mut R) -> Result<(usize, Vec<Vec<f64>>), SisapIoError> {
    let (dim, data) = read_vectors_raw(r)?;
    let vectors = data.chunks_exact(dim.max(1)).map(<[f64]>::to_vec).collect();
    Ok((dim, vectors))
}

/// [`write_vectors`] for flat storage — same on-disk format.
pub fn write_vectors_flat<W: Write>(w: &mut W, vectors: &crate::VectorSet) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    writeln!(w, "{} {}", vectors.dim(), vectors.len())?;
    for row in vectors.rows() {
        let mut first = true;
        for &x in row {
            assert!(x.is_finite(), "non-finite coordinate {x}");
            if !first {
                write!(w, " ")?;
            }
            write!(w, "{x:.17e}")?;
            first = false;
        }
        writeln!(w)?;
    }
    w.flush()
}

/// [`read_vectors`] straight into flat storage: one contiguous buffer,
/// no per-row allocation.  Same parser as the nested reader, so both
/// accept and reject exactly the same bytes.
pub fn read_vectors_flat<R: BufRead>(r: &mut R) -> Result<crate::VectorSet, SisapIoError> {
    let (dim, vectors) = read_vectors_raw(r)?;
    Ok(crate::VectorSet::from_raw(dim, vectors))
}

/// The one vector-database parser behind [`read_vectors`] and
/// [`read_vectors_flat`].
fn read_vectors_raw<R: BufRead>(r: &mut R) -> Result<(usize, Vec<f64>), SisapIoError> {
    let mut lines = r.lines().enumerate();
    let (header_no, header) = loop {
        match lines.next() {
            None => return Err(parse_err(0, "empty file: missing `dim n` header")),
            Some((i, line)) => {
                let line = line?;
                if !line.trim().is_empty() {
                    break (i + 1, line);
                }
            }
        }
    };
    let mut parts = header.split_whitespace();
    let dim: usize = parts
        .next()
        .ok_or_else(|| parse_err(header_no, "missing dim in header"))?
        .parse()
        .map_err(|e| parse_err(header_no, format!("bad dim: {e}")))?;
    let n: usize = parts
        .next()
        .ok_or_else(|| parse_err(header_no, "missing n in header"))?
        .parse()
        .map_err(|e| parse_err(header_no, format!("bad n: {e}")))?;
    if parts.next().is_some() {
        return Err(parse_err(header_no, "header has trailing tokens (want `dim n`)"));
    }

    let mut data: Vec<f64> = Vec::with_capacity(n * dim);
    let mut rows = 0usize;
    for (i, line) in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let line_no = i + 1;
        let before = data.len();
        for tok in line.split_whitespace() {
            let x: f64 = tok
                .parse()
                .map_err(|e| parse_err(line_no, format!("bad coordinate `{tok}`: {e}")))?;
            if !x.is_finite() {
                return Err(parse_err(line_no, format!("non-finite coordinate {x}")));
            }
            data.push(x);
        }
        if data.len() - before != dim {
            return Err(parse_err(
                line_no,
                format!("row has {} coordinates, expected {dim}", data.len() - before),
            ));
        }
        rows += 1;
        if rows > n {
            return Err(parse_err(line_no, format!("more than the declared {n} rows")));
        }
    }
    if rows != n {
        return Err(parse_err(0, format!("header declared {n} rows, found {rows}")));
    }
    Ok((dim, data))
}

/// Writes a string database, one string per line.
///
/// # Panics
/// Panics if any string contains a newline (the format cannot represent
/// it).
pub fn write_strings<W: Write>(w: &mut W, strings: &[String]) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    for s in strings {
        assert!(!s.contains('\n'), "string contains a newline");
        writeln!(w, "{s}")?;
    }
    w.flush()
}

/// Reads a string database: one string per line, trailing `\r` stripped,
/// empty trailing line ignored (as produced by line-oriented tools).
pub fn read_strings<R: BufRead>(r: &mut R) -> Result<Vec<String>, SisapIoError> {
    let mut out = Vec::new();
    for line in r.lines() {
        let mut line = line?;
        if line.ends_with('\r') {
            line.pop();
        }
        out.push(line);
    }
    while out.last().is_some_and(std::string::String::is_empty) {
        out.pop();
    }
    Ok(out)
}

/// [`write_vectors`] to a file path.
pub fn write_vectors_file<Q: AsRef<Path>>(
    path: Q,
    dim: usize,
    vectors: &[Vec<f64>],
) -> io::Result<()> {
    let mut f = File::create(path)?;
    write_vectors(&mut f, dim, vectors)
}

/// [`read_vectors`] from a file path.
pub fn read_vectors_file<Q: AsRef<Path>>(path: Q) -> Result<(usize, Vec<Vec<f64>>), SisapIoError> {
    let mut r = BufReader::new(File::open(path)?);
    read_vectors(&mut r)
}

/// [`read_vectors_flat`] from a file path.
pub fn read_vectors_file_flat<Q: AsRef<Path>>(path: Q) -> Result<crate::VectorSet, SisapIoError> {
    let mut r = BufReader::new(File::open(path)?);
    read_vectors_flat(&mut r)
}

/// [`write_strings`] to a file path.
pub fn write_strings_file<Q: AsRef<Path>>(path: Q, strings: &[String]) -> io::Result<()> {
    let mut f = File::create(path)?;
    write_strings(&mut f, strings)
}

/// [`read_strings`] from a file path.
pub fn read_strings_file<Q: AsRef<Path>>(path: Q) -> Result<Vec<String>, SisapIoError> {
    let mut r = BufReader::new(File::open(path)?);
    read_strings(&mut r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vectors::uniform_unit_cube;
    use std::io::Cursor;

    #[test]
    fn flat_io_matches_nested_io() {
        let vecs = uniform_unit_cube(60, 3, 78);
        let flat = crate::VectorSet::from_nested(&vecs);
        let mut nested_buf = Vec::new();
        write_vectors(&mut nested_buf, 3, &vecs).unwrap();
        let mut flat_buf = Vec::new();
        write_vectors_flat(&mut flat_buf, &flat).unwrap();
        assert_eq!(nested_buf, flat_buf, "identical bytes on disk");
        let back = read_vectors_flat(&mut Cursor::new(&nested_buf)).unwrap();
        assert_eq!(back, flat, "bit-exact flat roundtrip");
        let (dim, nested_back) = read_vectors(&mut Cursor::new(&flat_buf)).unwrap();
        assert_eq!(dim, 3);
        assert_eq!(nested_back, vecs);
    }

    #[test]
    fn vectors_roundtrip_losslessly() {
        let vecs = uniform_unit_cube(50, 4, 77);
        let mut buf = Vec::new();
        write_vectors(&mut buf, 4, &vecs).unwrap();
        let (dim, back) = read_vectors(&mut Cursor::new(&buf)).unwrap();
        assert_eq!(dim, 4);
        assert_eq!(back, vecs, "bit-exact f64 roundtrip");
    }

    #[test]
    fn vectors_roundtrip_extreme_values() {
        let vecs = vec![vec![0.0, -0.0, 1e-300], vec![f64::MIN_POSITIVE, -1e300, 0.1 + 0.2]];
        let mut buf = Vec::new();
        write_vectors(&mut buf, 3, &vecs).unwrap();
        let (_, back) = read_vectors(&mut Cursor::new(&buf)).unwrap();
        for (a, b) in back.iter().flatten().zip(vecs.iter().flatten()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn empty_vector_set_roundtrips() {
        let mut buf = Vec::new();
        write_vectors(&mut buf, 7, &[]).unwrap();
        let (dim, back) = read_vectors(&mut Cursor::new(&buf)).unwrap();
        assert_eq!((dim, back.len()), (7, 0));
    }

    #[test]
    fn rejects_missing_header() {
        let err = read_vectors(&mut Cursor::new(b"")).unwrap_err();
        assert!(err.to_string().contains("empty file"), "{err}");
    }

    #[test]
    fn rejects_bad_header() {
        for bad in ["2", "x 3", "2 3 4", "2 -1"] {
            let err = read_vectors(&mut Cursor::new(bad.as_bytes())).unwrap_err();
            assert!(matches!(err, SisapIoError::Parse { line: 1, .. }), "{bad}: {err}");
        }
    }

    #[test]
    fn rejects_row_arity_mismatch() {
        let err = read_vectors(&mut Cursor::new(b"2 1\n0.5\n" as &[u8])).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2") && msg.contains("expected 2"), "{msg}");
    }

    #[test]
    fn rejects_non_numeric_and_non_finite() {
        let err = read_vectors(&mut Cursor::new(b"1 1\nfoo\n" as &[u8])).unwrap_err();
        assert!(err.to_string().contains("bad coordinate"), "{err}");
        let err = read_vectors(&mut Cursor::new(b"1 1\ninf\n" as &[u8])).unwrap_err();
        assert!(err.to_string().contains("non-finite"), "{err}");
        let err = read_vectors(&mut Cursor::new(b"1 1\nNaN\n" as &[u8])).unwrap_err();
        assert!(
            err.to_string().contains("bad coordinate") || err.to_string().contains("non-finite"),
            "{err}"
        );
    }

    #[test]
    fn rejects_row_count_mismatch() {
        let err = read_vectors(&mut Cursor::new(b"1 2\n0.5\n" as &[u8])).unwrap_err();
        assert!(err.to_string().contains("declared 2 rows, found 1"), "{err}");
        let err = read_vectors(&mut Cursor::new(b"1 1\n0.5\n0.6\n" as &[u8])).unwrap_err();
        assert!(err.to_string().contains("more than the declared"), "{err}");
    }

    /// Both readers over the same bytes: same `(dim, rows)` bit-for-bit,
    /// or the same error (line and message).
    fn assert_readers_agree(bytes: &[u8]) -> Result<(usize, usize), String> {
        let nested = read_vectors(&mut Cursor::new(bytes));
        let flat = read_vectors_flat(&mut Cursor::new(bytes));
        match (nested, flat) {
            (Ok((dim, rows)), Ok(set)) => {
                assert_eq!(dim, set.dim(), "dim disagrees");
                assert_eq!(rows.len(), set.len(), "row count disagrees");
                for (i, row) in rows.iter().enumerate() {
                    for (a, b) in row.iter().zip(set.row(i)) {
                        assert_eq!(a.to_bits(), b.to_bits(), "row {i} disagrees");
                    }
                }
                Ok((dim, rows.len()))
            }
            (Err(a), Err(b)) => {
                assert_eq!(a.to_string(), b.to_string(), "errors disagree");
                Err(a.to_string())
            }
            (nested, flat) => panic!(
                "readers disagree: nested {:?}, flat {:?}",
                nested.map(|(d, v)| (d, v.len())).map_err(|e| e.to_string()),
                flat.map(|v| v.len()).map_err(|e| e.to_string())
            ),
        }
    }

    #[test]
    fn readers_tolerate_trailing_newlines_identically() {
        for tail in ["", "\n", "\n\n", "\n \n"] {
            let text = format!("2 2\n0 1\n2 3{tail}");
            let got = assert_readers_agree(text.as_bytes());
            assert_eq!(got, Ok((2, 2)), "tail {tail:?}");
        }
    }

    #[test]
    fn readers_tolerate_crlf_identically() {
        // CRLF everywhere, including a trailing blank CRLF line.
        let got = assert_readers_agree(b"2 2\r\n0.5 1.5\r\n2.5 3.5\r\n\r\n");
        assert_eq!(got, Ok((2, 2)));
        // Mixed endings.
        let got = assert_readers_agree(b"2 2\r\n0.5 1.5\n2.5 3.5\r\n");
        assert_eq!(got, Ok((2, 2)));
    }

    #[test]
    fn readers_reject_truncated_rows_identically() {
        // File cut off mid-row: the final row has too few coordinates.
        let err = assert_readers_agree(b"2 3\n0 1\n2 3\n4").unwrap_err();
        assert!(err.contains("line 4") && err.contains("expected 2"), "{err}");
        // File cut off between rows: fewer rows than the header declared
        // must error, not silently yield a shorter database.
        let err = assert_readers_agree(b"2 3\n0 1\n2 3\n").unwrap_err();
        assert!(err.contains("declared 3 rows, found 2"), "{err}");
        // Truncation with a CRLF tail behaves the same.
        let err = assert_readers_agree(b"2 3\r\n0 1\r\n2 3\r\n").unwrap_err();
        assert!(err.contains("declared 3 rows, found 2"), "{err}");
    }

    #[test]
    fn readers_reject_malformed_input_identically() {
        for bad in [&b""[..], b"2", b"x 3\n", b"2 2\n0 1\n2 3\n4 5\n", b"1 1\nfoo\n", b"1 1\ninf\n"]
        {
            assert_readers_agree(bad).unwrap_err();
        }
    }

    #[test]
    fn blank_lines_are_ignored() {
        let (dim, vecs) = read_vectors(&mut Cursor::new(b"\n2 2\n0 1\n\n2 3\n" as &[u8])).unwrap();
        assert_eq!(dim, 2);
        assert_eq!(vecs, vec![vec![0.0, 1.0], vec![2.0, 3.0]]);
    }

    #[test]
    fn strings_roundtrip_including_unicode() {
        let words: Vec<String> =
            ["hond", "chien", "Hund", "ʃtra:sə", "日本語", ""].map(String::from).to_vec();
        // Interior empty string survives; only trailing empties are
        // stripped, so append a sentinel.
        let mut with_sentinel = words;
        with_sentinel.push("end".to_string());
        let mut buf = Vec::new();
        write_strings(&mut buf, &with_sentinel).unwrap();
        let back = read_strings(&mut Cursor::new(&buf)).unwrap();
        assert_eq!(back, with_sentinel);
    }

    #[test]
    fn strings_strip_crlf_and_trailing_blank() {
        let back = read_strings(&mut Cursor::new(b"cat\r\ndog\r\n\n" as &[u8])).unwrap();
        assert_eq!(back, vec!["cat".to_string(), "dog".to_string()]);
    }

    #[test]
    fn file_variants_roundtrip() {
        let dir = std::env::temp_dir().join("dp_sisap_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let vpath = dir.join("vecs.txt");
        let spath = dir.join("strs.txt");
        let vecs = uniform_unit_cube(10, 3, 5);
        write_vectors_file(&vpath, 3, &vecs).unwrap();
        let (dim, back) = read_vectors_file(&vpath).unwrap();
        assert_eq!((dim, back), (3, vecs));
        let words = vec!["alpha".to_string(), "beta".to_string()];
        write_strings_file(&spath, &words).unwrap();
        assert_eq!(read_strings_file(&spath).unwrap(), words);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn writer_rejects_nan() {
        let mut buf = Vec::new();
        write_vectors(&mut buf, 1, &[vec![f64::NAN]]).unwrap();
    }

    #[test]
    #[should_panic(expected = "newline")]
    fn writer_rejects_embedded_newline() {
        let mut buf = Vec::new();
        write_strings(&mut buf, &["a\nb".to_string()]).unwrap();
    }
}
