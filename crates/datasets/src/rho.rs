//! The Chávez–Navarro intrinsic dimensionality ρ.
//!
//! ρ = μ² / (2σ²), where μ and σ² are the mean and variance of the
//! distance between two random database points.  Table 2 reports ρ for
//! every database; the paper cautions that ρ depends on the probability
//! *distribution* while permutation counts depend only on the support —
//! both statistics are provided so the experiments can show exactly that
//! contrast.

use crate::VectorSet;
use dp_metric::{Distance, Metric};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Estimates ρ from `pairs` random point pairs (deterministic in `seed`).
///
/// # Panics
/// Panics if the dataset has fewer than two points or `pairs == 0`.
pub fn intrinsic_dimensionality<P, M: Metric<P>>(
    metric: &M,
    points: &[P],
    pairs: usize,
    seed: u64,
) -> f64 {
    rho_from_moments(distance_moments(metric, points, pairs, seed))
}

/// [`intrinsic_dimensionality`] over flat [`VectorSet`] storage.
///
/// Samples the same pair stream (same `seed` ⇒ same indices) and
/// evaluates the same slice-level metric code, so the estimate is
/// **bit-identical** to the nested path on equal coordinates — the flat
/// survey pipeline depends on that.
pub fn intrinsic_dimensionality_flat<M: Metric<[f64]>>(
    metric: &M,
    points: &VectorSet,
    pairs: usize,
    seed: u64,
) -> f64 {
    rho_from_moments(distance_moments_flat(metric, points, pairs, seed))
}

fn rho_from_moments((mean, var): (f64, f64)) -> f64 {
    if var == 0.0 {
        return f64::INFINITY;
    }
    mean * mean / (2.0 * var)
}

/// Mean and variance of the sampled pairwise distance distribution.
pub fn distance_moments<P, M: Metric<P>>(
    metric: &M,
    points: &[P],
    pairs: usize,
    seed: u64,
) -> (f64, f64) {
    moments_impl(points.len(), pairs, seed, |i, j| metric.distance(&points[i], &points[j]).to_f64())
}

/// [`distance_moments`] over flat [`VectorSet`] storage (bit-identical
/// sampling, see [`intrinsic_dimensionality_flat`]).
pub fn distance_moments_flat<M: Metric<[f64]>>(
    metric: &M,
    points: &VectorSet,
    pairs: usize,
    seed: u64,
) -> (f64, f64) {
    moments_impl(points.len(), pairs, seed, |i, j| {
        metric.distance(points.row(i), points.row(j)).to_f64()
    })
}

/// Shared sampling core: both storage layouts draw the identical pair
/// stream and accumulate in the identical order, which is what makes the
/// flat and nested estimates bit-for-bit equal.
fn moments_impl(
    n: usize,
    pairs: usize,
    seed: u64,
    dist: impl Fn(usize, usize) -> f64,
) -> (f64, f64) {
    assert!(n >= 2, "need at least two points");
    assert!(pairs > 0, "need at least one pair");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sum = 0.0f64;
    let mut sum_sq = 0.0f64;
    for _ in 0..pairs {
        let i = rng.random_range(0..n);
        let mut j = rng.random_range(0..n - 1);
        if j >= i {
            j += 1;
        }
        let d = dist(i, j);
        sum += d;
        sum_sq += d * d;
    }
    let n = pairs as f64;
    let mean = sum / n;
    let var = (sum_sq / n - mean * mean).max(0.0);
    (mean, var)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vectors::uniform_unit_cube;
    use dp_metric::L2;

    #[test]
    fn rho_grows_with_dimension() {
        // For uniform data, rho grows roughly linearly in the dimension
        // (Chávez–Navarro).  Check strict growth over d = 1, 4, 16.
        let rhos: Vec<f64> = [1usize, 4, 16]
            .iter()
            .map(|&d| {
                let pts = uniform_unit_cube(2000, d, 42);
                intrinsic_dimensionality(&L2, &pts, 4000, 7)
            })
            .collect();
        assert!(rhos[0] < rhos[1] && rhos[1] < rhos[2], "{rhos:?}");
        // 1-D uniform: rho = mu^2/(2 sigma^2) = (1/3)^2 / (2/18) = 1.
        assert!((rhos[0] - 1.0).abs() < 0.15, "rho_1d = {}", rhos[0]);
    }

    #[test]
    fn flat_rho_is_bit_identical_to_nested() {
        use crate::vectors::uniform_unit_cube_flat;
        let nested = uniform_unit_cube(700, 4, 19);
        let flat = uniform_unit_cube_flat(700, 4, 19);
        let a = intrinsic_dimensionality(&L2, &nested, 3000, 5);
        let b = intrinsic_dimensionality_flat(&L2, &flat, 3000, 5);
        assert_eq!(a.to_bits(), b.to_bits());
        let (m1, v1) = distance_moments(&dp_metric::L1, &nested, 2000, 6);
        let (m2, v2) = distance_moments_flat(&dp_metric::L1, &flat, 2000, 6);
        assert_eq!((m1.to_bits(), v1.to_bits()), (m2.to_bits(), v2.to_bits()));
    }

    #[test]
    fn rho_is_deterministic_in_seed() {
        let pts = uniform_unit_cube(500, 3, 1);
        let a = intrinsic_dimensionality(&L2, &pts, 1000, 5);
        let b = intrinsic_dimensionality(&L2, &pts, 1000, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn constant_distances_give_infinite_rho() {
        // Two identical clusters of two points: all cross distances equal.
        struct Unit;
        impl Metric<u32> for Unit {
            type Dist = u32;
            fn distance(&self, a: &u32, b: &u32) -> u32 {
                u32::from(a != b)
            }
        }
        let pts = vec![0u32, 1, 2, 3];
        let rho = intrinsic_dimensionality(&Unit, &pts, 500, 1);
        assert!(rho.is_infinite());
    }

    #[test]
    fn moments_match_hand_computation_on_segment() {
        // Uniform on [0,1]: E|x-y| = 1/3, Var = 1/18.
        let pts = uniform_unit_cube(5000, 1, 3);
        let (mean, var) = distance_moments(&L2, &pts, 20000, 9);
        assert!((mean - 1.0 / 3.0).abs() < 0.01, "mean {mean}");
        assert!((var - 1.0 / 18.0).abs() < 0.005, "var {var}");
    }

    #[test]
    #[should_panic(expected = "two points")]
    fn single_point_rejected() {
        let pts = uniform_unit_cube(1, 2, 0);
        let _ = intrinsic_dimensionality(&L2, &pts, 10, 0);
    }
}
