//! The Chávez–Navarro intrinsic dimensionality ρ.
//!
//! ρ = μ² / (2σ²), where μ and σ² are the mean and variance of the
//! distance between two random database points.  Table 2 reports ρ for
//! every database; the paper cautions that ρ depends on the probability
//! *distribution* while permutation counts depend only on the support —
//! both statistics are provided so the experiments can show exactly that
//! contrast.

use dp_metric::{Distance, Metric};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Estimates ρ from `pairs` random point pairs (deterministic in `seed`).
///
/// # Panics
/// Panics if the dataset has fewer than two points or `pairs == 0`.
pub fn intrinsic_dimensionality<P, M: Metric<P>>(
    metric: &M,
    points: &[P],
    pairs: usize,
    seed: u64,
) -> f64 {
    let (mean, var) = distance_moments(metric, points, pairs, seed);
    if var == 0.0 {
        return f64::INFINITY;
    }
    mean * mean / (2.0 * var)
}

/// Mean and variance of the sampled pairwise distance distribution.
pub fn distance_moments<P, M: Metric<P>>(
    metric: &M,
    points: &[P],
    pairs: usize,
    seed: u64,
) -> (f64, f64) {
    assert!(points.len() >= 2, "need at least two points");
    assert!(pairs > 0, "need at least one pair");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sum = 0.0f64;
    let mut sum_sq = 0.0f64;
    for _ in 0..pairs {
        let i = rng.random_range(0..points.len());
        let mut j = rng.random_range(0..points.len() - 1);
        if j >= i {
            j += 1;
        }
        let d = metric.distance(&points[i], &points[j]).to_f64();
        sum += d;
        sum_sq += d * d;
    }
    let n = pairs as f64;
    let mean = sum / n;
    let var = (sum_sq / n - mean * mean).max(0.0);
    (mean, var)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vectors::uniform_unit_cube;
    use dp_metric::L2;

    #[test]
    fn rho_grows_with_dimension() {
        // For uniform data, rho grows roughly linearly in the dimension
        // (Chávez–Navarro).  Check strict growth over d = 1, 4, 16.
        let rhos: Vec<f64> = [1usize, 4, 16]
            .iter()
            .map(|&d| {
                let pts = uniform_unit_cube(2000, d, 42);
                intrinsic_dimensionality(&L2, &pts, 4000, 7)
            })
            .collect();
        assert!(rhos[0] < rhos[1] && rhos[1] < rhos[2], "{rhos:?}");
        // 1-D uniform: rho = mu^2/(2 sigma^2) = (1/3)^2 / (2/18) = 1.
        assert!((rhos[0] - 1.0).abs() < 0.15, "rho_1d = {}", rhos[0]);
    }

    #[test]
    fn rho_is_deterministic_in_seed() {
        let pts = uniform_unit_cube(500, 3, 1);
        let a = intrinsic_dimensionality(&L2, &pts, 1000, 5);
        let b = intrinsic_dimensionality(&L2, &pts, 1000, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn constant_distances_give_infinite_rho() {
        // Two identical clusters of two points: all cross distances equal.
        struct Unit;
        impl Metric<u32> for Unit {
            type Dist = u32;
            fn distance(&self, a: &u32, b: &u32) -> u32 {
                u32::from(a != b)
            }
        }
        let pts = vec![0u32, 1, 2, 3];
        let rho = intrinsic_dimensionality(&Unit, &pts, 500, 1);
        assert!(rho.is_infinite());
    }

    #[test]
    fn moments_match_hand_computation_on_segment() {
        // Uniform on [0,1]: E|x-y| = 1/3, Var = 1/18.
        let pts = uniform_unit_cube(5000, 1, 3);
        let (mean, var) = distance_moments(&L2, &pts, 20000, 9);
        assert!((mean - 1.0 / 3.0).abs() < 0.01, "mean {mean}");
        assert!((var - 1.0 / 18.0).abs() < 0.005, "var {var}");
    }

    #[test]
    #[should_panic(expected = "two points")]
    fn single_point_rejected() {
        let pts = uniform_unit_cube(1, 2, 0);
        let _ = intrinsic_dimensionality(&L2, &pts, 10, 0);
    }
}
