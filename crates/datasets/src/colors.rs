//! Synthetic colour histograms (the `colors` analogue).
//!
//! The SISAP `colors` database holds 112,544 image colour histograms in
//! 112 dimensions under L2; Table 2 reports a very low intrinsic
//! dimensionality (ρ ≈ 2.7) and the paper finds its permutation counts
//! comparable to a **two-dimensional** uniform distribution.  Histograms
//! live on the probability simplex and are smooth, which crushes their
//! effective dimension; the analogue generates mixtures of a handful of
//! smooth bumps over 112 bins and normalises.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Dimension of the colour histogram space, matching the SISAP database.
pub const COLOR_DIMS: usize = 112;

/// Generates `n` normalised 112-bin histograms.
pub fn generate_histograms(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut h = vec![1e-4; COLOR_DIMS];
            // A few dominant smooth bumps (dominant colours of an image).
            let bumps = rng.random_range(2..=5);
            for _ in 0..bumps {
                let centre = rng.random_range(0..COLOR_DIMS) as f64;
                let width = 2.0 + 10.0 * rng.random::<f64>();
                let height = rng.random::<f64>();
                for (i, slot) in h.iter_mut().enumerate() {
                    let z = (i as f64 - centre) / width;
                    *slot += height * (-0.5 * z * z).exp();
                }
            }
            let total: f64 = h.iter().sum();
            for slot in &mut h {
                *slot /= total;
            }
            h
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rho::intrinsic_dimensionality;
    use dp_metric::L2;

    #[test]
    fn histograms_are_normalised() {
        let hs = generate_histograms(100, 3);
        assert_eq!(hs.len(), 100);
        for h in &hs {
            assert_eq!(h.len(), COLOR_DIMS);
            let total: f64 = h.iter().sum();
            assert!((total - 1.0).abs() < 1e-9);
            assert!(h.iter().all(|&x| x > 0.0));
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate_histograms(10, 5), generate_histograms(10, 5));
        assert_ne!(generate_histograms(10, 5), generate_histograms(10, 6));
    }

    #[test]
    fn intrinsic_dimensionality_is_far_below_112() {
        // Paper's Table 2: rho = 2.745 for colors.  The synthetic analogue
        // must land in low single digits despite 112 embedding dimensions.
        let hs = generate_histograms(600, 7);
        let rho = intrinsic_dimensionality(&L2, &hs, 1500, 3);
        assert!(rho < 8.0, "rho = {rho}");
        assert!(rho > 0.5, "rho = {rho}");
    }

    #[test]
    fn histograms_are_smooth() {
        // Adjacent bins should be correlated: total variation much smaller
        // than for white noise.
        let hs = generate_histograms(50, 11);
        for h in &hs {
            let tv: f64 = h.windows(2).map(|w| (w[1] - w[0]).abs()).sum();
            assert!(tv < 0.8, "total variation {tv}");
        }
    }
}
