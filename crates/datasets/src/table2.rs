//! The roster of Table 2 databases.
//!
//! Each entry records the paper's database name, its cardinality n (from
//! Table 2), the metric family, and which synthetic generator stands in
//! for it.  The `table2` bench binary walks this roster; tests walk it at
//! reduced n.

use crate::{colors, dictionary, documents, genes, nasa};
use dp_metric::SparseVec;

/// Which synthetic generator (and therefore which metric) an entry uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Table2Kind {
    /// Letter-Markov dictionary under Levenshtein (index into
    /// [`dictionary::language_profiles`]).
    Dictionary(usize),
    /// Gene fragments under Levenshtein.
    Genes,
    /// Long documents under angular cosine distance.
    LongDocuments,
    /// Short documents under angular cosine distance.
    ShortDocuments,
    /// Colour histograms under L2.
    Colors,
    /// NASA feature vectors under L2.
    Nasa,
}

/// One database of the paper's Table 2.
#[derive(Debug, Clone)]
pub struct Table2Entry {
    /// The paper's database name.
    pub name: &'static str,
    /// Cardinality reported in Table 2.
    pub n: usize,
    /// ρ reported in Table 2 (for comparison columns).
    pub paper_rho: f64,
    /// Which generator reproduces it.
    pub kind: Table2Kind,
}

/// All twelve Table 2 databases with the paper's cardinalities.
pub fn table2_roster() -> Vec<Table2Entry> {
    vec![
        Table2Entry {
            name: "Dutch",
            n: 229_328,
            paper_rho: 7.159,
            kind: Table2Kind::Dictionary(0),
        },
        Table2Entry {
            name: "English",
            n: 69_069,
            paper_rho: 8.492,
            kind: Table2Kind::Dictionary(1),
        },
        Table2Entry {
            name: "French",
            n: 138_257,
            paper_rho: 10.510,
            kind: Table2Kind::Dictionary(2),
        },
        Table2Entry {
            name: "German",
            n: 75_086,
            paper_rho: 7.383,
            kind: Table2Kind::Dictionary(3),
        },
        Table2Entry {
            name: "Italian",
            n: 116_879,
            paper_rho: 10.436,
            kind: Table2Kind::Dictionary(4),
        },
        Table2Entry {
            name: "Norwegian",
            n: 85_637,
            paper_rho: 5.503,
            kind: Table2Kind::Dictionary(5),
        },
        Table2Entry {
            name: "Spanish",
            n: 86_061,
            paper_rho: 8.722,
            kind: Table2Kind::Dictionary(6),
        },
        Table2Entry { name: "listeria", n: 20_660, paper_rho: 0.894, kind: Table2Kind::Genes },
        Table2Entry { name: "long", n: 1_265, paper_rho: 2.603, kind: Table2Kind::LongDocuments },
        Table2Entry {
            name: "short",
            n: 25_276,
            paper_rho: 808.739,
            kind: Table2Kind::ShortDocuments,
        },
        Table2Entry { name: "colors", n: 112_544, paper_rho: 2.745, kind: Table2Kind::Colors },
        Table2Entry { name: "nasa", n: 40_150, paper_rho: 5.186, kind: Table2Kind::Nasa },
    ]
}

/// Materialised synthetic points for one entry (string-keyed databases).
pub enum Table2Data {
    /// Words or gene fragments (Levenshtein metric).
    Strings(Vec<String>),
    /// Documents (cosine metric).
    Documents(Vec<SparseVec>),
    /// Real vectors (L2 metric).
    Vectors(Vec<Vec<f64>>),
}

impl Table2Entry {
    /// Generates the synthetic stand-in at cardinality `n` (use
    /// `self.n` for the paper-scale run, smaller for tests).
    pub fn generate(&self, n: usize, seed: u64) -> Table2Data {
        match self.kind {
            Table2Kind::Dictionary(lang) => {
                let profiles = dictionary::language_profiles();
                Table2Data::Strings(dictionary::generate_words(&profiles[lang], n, seed))
            }
            Table2Kind::Genes => Table2Data::Strings(genes::generate_fragments(n, 400, seed)),
            Table2Kind::LongDocuments => Table2Data::Documents(documents::generate_documents(
                documents::long_profile(),
                n,
                seed,
            )),
            Table2Kind::ShortDocuments => Table2Data::Documents(documents::generate_documents(
                documents::short_profile(),
                n,
                seed,
            )),
            Table2Kind::Colors => Table2Data::Vectors(colors::generate_histograms(n, seed)),
            Table2Kind::Nasa => Table2Data::Vectors(nasa::generate_features(n, seed)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_matches_paper_cardinalities() {
        let roster = table2_roster();
        assert_eq!(roster.len(), 12);
        let by_name = |name: &str| roster.iter().find(|e| e.name == name).unwrap().n;
        assert_eq!(by_name("Dutch"), 229_328);
        assert_eq!(by_name("listeria"), 20_660);
        assert_eq!(by_name("long"), 1_265);
        assert_eq!(by_name("nasa"), 40_150);
    }

    #[test]
    fn every_entry_generates_points() {
        for entry in table2_roster() {
            match entry.generate(40, 11) {
                Table2Data::Strings(v) => assert_eq!(v.len(), 40, "{}", entry.name),
                Table2Data::Documents(v) => assert_eq!(v.len(), 40, "{}", entry.name),
                Table2Data::Vectors(v) => assert_eq!(v.len(), 40, "{}", entry.name),
            }
        }
    }

    #[test]
    fn kinds_route_to_expected_representations() {
        let roster = table2_roster();
        assert!(matches!(roster[0].generate(5, 1), Table2Data::Strings(_)));
        assert!(matches!(roster[8].generate(5, 1), Table2Data::Documents(_)));
        assert!(matches!(roster[10].generate(5, 1), Table2Data::Vectors(_)));
    }
}
