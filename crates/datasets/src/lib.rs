//! # dp-datasets — synthetic metric-space databases
//!
//! The paper's Table 2 measures distance-permutation counts on the SISAP
//! library's sample databases; those archives are not redistributable
//! here, so this crate generates **synthetic analogues** with the same
//! cardinality, the same metric, and a matched dimensional character
//! (see DESIGN.md §2 for the substitution argument):
//!
//! * [`dictionary`] — per-language letter-Markov word lists
//!   (Dutch…Spanish; Levenshtein metric);
//! * [`genes`] — DNA fragments (`listeria`; Levenshtein metric);
//! * [`documents`] — Zipf-sparse term vectors (`long`, `short`; angular
//!   cosine metric);
//! * [`colors`] — smooth 112-bin colour histograms (`colors`; L2);
//! * [`nasa`] — low-rank 20-dimensional feature vectors (`nasa`; L2);
//! * [`vectors`] — uniform/Gaussian/clustered real vectors, including the
//!   Table 3 generator (10⁶ points uniform in the unit cube);
//! * [`rho`] — the Chávez–Navarro intrinsic dimensionality
//!   ρ = μ²/(2σ²) of the pairwise-distance distribution;
//! * [`table2`] — the roster of Table 2 databases with the paper's
//!   cardinalities.
//!
//! All generators are deterministic in their seed.
//!
//! For bulk vector workloads, [`flat::VectorSet`] stores a whole database
//! as one contiguous row-major `Vec<f64>` — `row(i)` views are free, the
//! data streams linearly through the batched permutation kernels, and the
//! `*_flat` generator variants in [`vectors`] produce coordinates
//! identical to their nested counterparts (same seed, same RNG stream).
//! Prefer `VectorSet` for anything that scans the database (index builds,
//! permutation counting, Table 3 experiments); the nested `Vec<Vec<f64>>`
//! forms remain as a compatibility shim for per-point ownership and for
//! the string/sparse workloads.
//!
//! [`sisap_io`] reads and writes the SISAP library's ASCII file formats,
//! so synthetic sets can be exported and — when available — the original
//! archives loaded into the same harness.

#![forbid(unsafe_code)]

pub mod colors;
pub mod dictionary;
pub mod documents;
pub mod flat;
pub mod genes;
pub mod nasa;
pub mod rho;
pub mod sisap_io;
pub mod table2;
pub mod vectors;

pub use flat::VectorSet;
pub use rho::{intrinsic_dimensionality, intrinsic_dimensionality_flat};
pub use table2::{table2_roster, Table2Entry, Table2Kind};
pub use vectors::{uniform_unit_cube, uniform_unit_cube_flat};
