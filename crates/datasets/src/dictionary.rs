//! Synthetic dictionaries under the Levenshtein metric.
//!
//! The SISAP sample set contains seven natural-language dictionaries
//! (Dutch, English, French, German, Italian, Norwegian, Spanish).  The
//! synthetic analogue draws words from a per-language first-order letter
//! Markov chain with a vowel/consonant alternation structure and a
//! language-specific length profile, then de-duplicates — reproducing the
//! properties the permutation counts depend on: a discrete metric with
//! small integer distances, heavy clustering around shared stems, and a
//! length distribution concentrated around 6–12 letters.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashSet;

/// Parameters of one synthetic language.
#[derive(Debug, Clone)]
pub struct LanguageProfile {
    /// Display name.
    pub name: &'static str,
    /// Mean word length (roughly; lengths are clamped to 2..=24).
    pub mean_len: f64,
    /// Standard deviation of word length.
    pub len_std: f64,
    /// Probability of a vowel following a consonant.
    pub vowel_after_consonant: f64,
    /// Probability of a vowel following a vowel (doubled vowels etc.).
    pub vowel_after_vowel: f64,
    /// RNG stream id so each language has its own letter biases.
    pub stream: u64,
}

/// The seven dictionary profiles, tuned to distinct length/structure mixes
/// (e.g. German/Dutch longer compounds, Italian/Spanish vowel-rich).
pub fn language_profiles() -> Vec<LanguageProfile> {
    vec![
        LanguageProfile {
            name: "dutch",
            mean_len: 9.5,
            len_std: 3.0,
            vowel_after_consonant: 0.68,
            vowel_after_vowel: 0.26,
            stream: 101,
        },
        LanguageProfile {
            name: "english",
            mean_len: 8.0,
            len_std: 2.6,
            vowel_after_consonant: 0.70,
            vowel_after_vowel: 0.18,
            stream: 102,
        },
        LanguageProfile {
            name: "french",
            mean_len: 8.8,
            len_std: 2.7,
            vowel_after_consonant: 0.78,
            vowel_after_vowel: 0.28,
            stream: 103,
        },
        LanguageProfile {
            name: "german",
            mean_len: 10.5,
            len_std: 3.4,
            vowel_after_consonant: 0.68,
            vowel_after_vowel: 0.14,
            stream: 104,
        },
        LanguageProfile {
            name: "italian",
            mean_len: 8.6,
            len_std: 2.5,
            vowel_after_consonant: 0.88,
            vowel_after_vowel: 0.32,
            stream: 105,
        },
        LanguageProfile {
            name: "norwegian",
            mean_len: 8.2,
            len_std: 2.8,
            vowel_after_consonant: 0.72,
            vowel_after_vowel: 0.20,
            stream: 106,
        },
        LanguageProfile {
            name: "spanish",
            mean_len: 8.9,
            len_std: 2.6,
            vowel_after_consonant: 0.82,
            vowel_after_vowel: 0.20,
            stream: 107,
        },
    ]
}

const VOWELS: &[u8] = b"aeiou";
const CONSONANTS: &[u8] = b"bcdfghjklmnpqrstvwxyz";

/// Generates `n` distinct words for a language profile.
///
/// Deterministic in `(profile.stream, seed)`.
pub fn generate_words(profile: &LanguageProfile, n: usize, seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed ^ profile.stream.wrapping_mul(0x9E37_79B9));
    // Language-specific letter weights: a fixed random ranking per stream
    // so e.g. synthetic-Italian favours different consonants than
    // synthetic-German.
    let vowel_w = biased_weights(VOWELS.len(), &mut rng);
    let cons_w = biased_weights(CONSONANTS.len(), &mut rng);

    let mut words = HashSet::with_capacity(n);
    let mut out = Vec::with_capacity(n);
    let mut word = String::new();
    while out.len() < n {
        word.clear();
        let len = (profile.mean_len + profile.len_std * crate::vectors::sample_normal(&mut rng))
            .round()
            .clamp(2.0, 24.0) as usize;
        let mut prev_vowel = rng.random_bool(0.4);
        for _ in 0..len {
            let vowel_p =
                if prev_vowel { profile.vowel_after_vowel } else { profile.vowel_after_consonant };
            let is_vowel = rng.random_bool(vowel_p);
            let c = if is_vowel {
                VOWELS[weighted_index(&vowel_w, &mut rng)]
            } else {
                CONSONANTS[weighted_index(&cons_w, &mut rng)]
            };
            word.push(c as char);
            prev_vowel = is_vowel;
        }
        if words.insert(word.clone()) {
            out.push(word.clone());
        }
    }
    out
}

/// Geometric-ish decreasing weights in a random order — a crude Zipf over
/// the alphabet.
fn biased_weights(len: usize, rng: &mut StdRng) -> Vec<f64> {
    let mut w: Vec<f64> = (0..len).map(|i| 1.0 / (1.0 + i as f64).powf(1.1)).collect();
    for i in (1..w.len()).rev() {
        let j = rng.random_range(0..=i);
        w.swap(i, j);
    }
    let total: f64 = w.iter().sum();
    // Store the cumulative distribution for O(log n) sampling.
    let mut acc = 0.0;
    for x in &mut w {
        acc += *x / total;
        *x = acc;
    }
    w
}

fn weighted_index(cdf: &[f64], rng: &mut StdRng) -> usize {
    let u: f64 = rng.random();
    cdf.partition_point(|&c| c < u).min(cdf.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_metric::{Levenshtein, Metric};

    #[test]
    fn words_are_distinct_and_sized() {
        let profile = &language_profiles()[1]; // english
        let words = generate_words(profile, 500, 42);
        assert_eq!(words.len(), 500);
        let set: HashSet<_> = words.iter().collect();
        assert_eq!(set.len(), 500);
        for w in &words {
            assert!((2..=24).contains(&w.len()), "length {} for {w}", w.len());
            assert!(w.bytes().all(|b| b.is_ascii_lowercase()));
        }
    }

    #[test]
    fn deterministic_per_language_and_seed() {
        let p = &language_profiles()[0];
        assert_eq!(generate_words(p, 100, 1), generate_words(p, 100, 1));
        assert_ne!(generate_words(p, 100, 1), generate_words(p, 100, 2));
    }

    #[test]
    fn languages_differ() {
        let profiles = language_profiles();
        let dutch = generate_words(&profiles[0], 200, 7);
        let italian = generate_words(&profiles[4], 200, 7);
        assert_ne!(dutch, italian);
        // Italian profile is vowel-rich: measure vowel fraction.
        let vf = |ws: &[String]| {
            let (mut v, mut t) = (0usize, 0usize);
            for w in ws {
                for b in w.bytes() {
                    t += 1;
                    v += usize::from(VOWELS.contains(&b));
                }
            }
            v as f64 / t as f64
        };
        assert!(vf(&italian) > vf(&dutch), "italian {} dutch {}", vf(&italian), vf(&dutch));
    }

    #[test]
    fn mean_length_tracks_profile() {
        let profiles = language_profiles();
        let german = generate_words(&profiles[3], 2000, 3);
        let english = generate_words(&profiles[1], 2000, 3);
        let mean = |ws: &[String]| {
            ws.iter().map(std::string::String::len).sum::<usize>() as f64 / ws.len() as f64
        };
        assert!(mean(&german) > mean(&english) + 1.0);
    }

    #[test]
    fn edit_distances_are_small_integers() {
        let p = &language_profiles()[6];
        let words = generate_words(p, 50, 9);
        for i in 0..10 {
            for j in 0..10 {
                let d = Levenshtein.distance(&words[i], &words[j]);
                assert!(d <= 24);
                if i == j {
                    assert_eq!(d, 0);
                }
            }
        }
    }

    #[test]
    fn profile_roster_has_seven_languages() {
        let names: Vec<&str> = language_profiles().iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            vec!["dutch", "english", "french", "german", "italian", "norwegian", "spanish"]
        );
    }
}
