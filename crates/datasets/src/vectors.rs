//! Real-vector dataset generators.
//!
//! [`uniform_unit_cube`] is the Table 3 workload: n points uniformly
//! distributed in \[0,1\]^d.  Gaussian and clustered variants support the
//! additional experiments (cell-occupancy curves, index evaluation) and
//! give data whose intrinsic dimensionality differs from its embedding
//! dimension.

use crate::flat::VectorSet;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// n points uniform in the unit cube \[0,1\]^d (the paper's Table 3 data).
pub fn uniform_unit_cube(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| (0..d).map(|_| rng.random::<f64>()).collect()).collect()
}

/// [`uniform_unit_cube`] into flat storage: same seed, same RNG stream,
/// identical coordinates — `uniform_unit_cube_flat(n, d, s).row(i)`
/// equals `uniform_unit_cube(n, d, s)[i]`.
pub fn uniform_unit_cube_flat(n: usize, d: usize, seed: u64) -> VectorSet {
    let mut rng = StdRng::seed_from_u64(seed);
    VectorSet::generate(n, d, |_, row| {
        for slot in row.iter_mut() {
            *slot = rng.random::<f64>();
        }
    })
}

/// [`gaussian`] into flat storage (same stream, identical coordinates).
pub fn gaussian_flat(n: usize, d: usize, std_dev: f64, seed: u64) -> VectorSet {
    let mut rng = StdRng::seed_from_u64(seed);
    VectorSet::generate(n, d, |_, row| {
        for slot in row.iter_mut() {
            *slot = 0.5 + std_dev * sample_normal(&mut rng);
        }
    })
}

/// [`clustered`] into flat storage (same stream, identical coordinates).
pub fn clustered_flat(n: usize, d: usize, clusters: usize, spread: f64, seed: u64) -> VectorSet {
    assert!(clusters > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let centres: Vec<Vec<f64>> =
        (0..clusters).map(|_| (0..d).map(|_| rng.random::<f64>()).collect()).collect();
    VectorSet::generate(n, d, |i, row| {
        let c = &centres[i % clusters];
        for (slot, &x) in row.iter_mut().zip(c.iter()) {
            *slot = x + spread * sample_normal(&mut rng);
        }
    })
}

/// n points from an isotropic Gaussian with the given standard deviation,
/// centred at 0.5^d (so it overlaps the unit cube).
pub fn gaussian(n: usize, d: usize, std_dev: f64, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| (0..d).map(|_| 0.5 + std_dev * sample_normal(&mut rng)).collect()).collect()
}

/// n points in `clusters` Gaussian blobs with centres uniform in the unit
/// cube and per-cluster spread `spread`.
pub fn clustered(n: usize, d: usize, clusters: usize, spread: f64, seed: u64) -> Vec<Vec<f64>> {
    assert!(clusters > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let centres: Vec<Vec<f64>> =
        (0..clusters).map(|_| (0..d).map(|_| rng.random::<f64>()).collect()).collect();
    (0..n)
        .map(|i| {
            let c = &centres[i % clusters];
            c.iter().map(|&x| x + spread * sample_normal(&mut rng)).collect()
        })
        .collect()
}

/// Points on a 1-D curve embedded in d dimensions (a helix-like path):
/// full embedding dimension, intrinsic dimension ≈ 1.  Useful for testing
/// the dimensionality estimator.
pub fn curve_embedded(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
    assert!(d >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let t: f64 = rng.random();
            (0..d)
                .map(|j| ((j as f64 + 1.0) * t * std::f64::consts::TAU / 4.0).sin() * 0.5 + 0.5)
                .collect()
        })
        .collect()
}

/// A standard normal sample via Box–Muller (rand's distribution crate is
/// not among the approved dependencies).
pub fn sample_normal(rng: &mut StdRng) -> f64 {
    // Avoid ln(0).
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Draws `k` distinct random indices in `0..n` (for site selection),
/// matching the paper's "choice of k sites chosen at random from the
/// database" protocol.
pub fn choose_distinct_indices(n: usize, k: usize, rng: &mut StdRng) -> Vec<usize> {
    assert!(k <= n, "cannot choose {k} distinct indices from {n}");
    // Floyd's algorithm: k iterations, no O(n) shuffle.
    let mut chosen = std::collections::BTreeSet::new();
    for j in (n - k)..n {
        let t = rng.random_range(0..=j);
        if !chosen.insert(t) {
            chosen.insert(j);
        }
    }
    let mut v: Vec<usize> = chosen.into_iter().collect();
    // BTreeSet gives sorted order; shuffle so site indices are unordered
    // (tie-breaking depends on site order, and the paper picks unordered
    // random sites).
    for i in (1..v.len()).rev() {
        let j = rng.random_range(0..=i);
        v.swap(i, j);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_shape_and_range() {
        let pts = uniform_unit_cube(500, 4, 1);
        assert_eq!(pts.len(), 500);
        for p in &pts {
            assert_eq!(p.len(), 4);
            assert!(p.iter().all(|&x| (0.0..1.0).contains(&x)));
        }
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(uniform_unit_cube(50, 3, 7), uniform_unit_cube(50, 3, 7));
        assert_ne!(uniform_unit_cube(50, 3, 7), uniform_unit_cube(50, 3, 8));
    }

    #[test]
    fn flat_generators_match_nested_exactly() {
        assert_eq!(uniform_unit_cube_flat(120, 5, 9).to_nested(), uniform_unit_cube(120, 5, 9));
        assert_eq!(gaussian_flat(80, 3, 0.2, 11).to_nested(), gaussian(80, 3, 0.2, 11));
        assert_eq!(clustered_flat(90, 4, 7, 0.05, 13).to_nested(), clustered(90, 4, 7, 0.05, 13));
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let pts = gaussian(20_000, 2, 0.1, 3);
        let mean_x: f64 = pts.iter().map(|p| p[0]).sum::<f64>() / pts.len() as f64;
        let var_x: f64 =
            pts.iter().map(|p| (p[0] - mean_x).powi(2)).sum::<f64>() / pts.len() as f64;
        assert!((mean_x - 0.5).abs() < 0.01, "mean {mean_x}");
        assert!((var_x - 0.01).abs() < 0.002, "var {var_x}");
    }

    #[test]
    fn clustered_has_cluster_structure() {
        let pts = clustered(1000, 3, 5, 0.01, 9);
        assert_eq!(pts.len(), 1000);
        // Points i and i+5 share a cluster; i and i+1 usually do not.
        let d_same: f64 = (0..100)
            .map(|i| {
                pts[i].iter().zip(&pts[i + 5]).map(|(a, b)| (a - b).powi(2)).sum::<f64>().sqrt()
            })
            .sum::<f64>()
            / 100.0;
        let d_diff: f64 = (0..100)
            .map(|i| {
                pts[i].iter().zip(&pts[i + 1]).map(|(a, b)| (a - b).powi(2)).sum::<f64>().sqrt()
            })
            .sum::<f64>()
            / 100.0;
        assert!(d_same * 5.0 < d_diff, "same {d_same} diff {d_diff}");
    }

    #[test]
    fn curve_is_low_dimensional() {
        let pts = curve_embedded(200, 6, 11);
        assert!(pts.iter().all(|p| p.len() == 6));
        // All points lie on the 1-parameter curve: recover t from the
        // first coordinate (sin is monotone on [0, tau/4]) and verify the
        // remaining coordinates follow the curve equation.
        for p in &pts {
            let t = ((p[0] - 0.5) * 2.0).asin() / (std::f64::consts::TAU / 4.0);
            for (j, &x) in p.iter().enumerate() {
                let expect = ((j as f64 + 1.0) * t * std::f64::consts::TAU / 4.0).sin() * 0.5 + 0.5;
                assert!((x - expect).abs() < 1e-9, "coord {j}: {x} vs {expect}");
            }
        }
    }

    #[test]
    fn normal_sampler_moments() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn choose_distinct_indices_properties() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..50 {
            let v = choose_distinct_indices(100, 12, &mut rng);
            assert_eq!(v.len(), 12);
            let set: std::collections::HashSet<_> = v.iter().collect();
            assert_eq!(set.len(), 12);
            assert!(v.iter().all(|&i| i < 100));
        }
        // Full draw.
        let all = choose_distinct_indices(5, 5, &mut rng);
        let mut sorted = all;
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "distinct indices")]
    fn too_many_indices_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = choose_distinct_indices(3, 4, &mut rng);
    }
}
