//! In-crate property tests for the permutation machinery.

use dp_permutation::bits::{BitReader, BitWriter};
use dp_permutation::encoding::{element_bits, pack, pack_ids, unpack, unpack_ids};
use dp_permutation::huffman::{entropy_bits, HuffmanCode, HuffmanPermStore};
use dp_permutation::lehmer::{factorial, rank, unrank};
use dp_permutation::perm::Permutation;
use dp_permutation::permdist::{cayley, kendall_tau, spearman_footrule, spearman_rho_sq};
use dp_permutation::prefix::{prefix_footrule, PrefixPermutation};
use dp_permutation::store::{PackedPermStore, RawPermStore};
use proptest::prelude::*;

fn arb_perm(k: usize) -> impl Strategy<Value = Permutation> {
    Just(k).prop_perturb(move |k, mut rng| {
        let mut items: Vec<u8> = (0..k as u8).collect();
        for i in (1..items.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            items.swap(i, j);
        }
        Permutation::from_slice(&items).expect("valid")
    })
}

proptest! {
    #[test]
    fn rank_is_lexicographic_order_preserving(a in arb_perm(7), b in arb_perm(7)) {
        // rank orders exactly like the derived lexicographic Ord.
        prop_assert_eq!(rank(&a).cmp(&rank(&b)), a.cmp(&b));
    }

    #[test]
    fn unrank_rank_roundtrip_k10(r in 0u128..3_628_800) {
        prop_assert_eq!(rank(&unrank(10, r)), r);
    }

    #[test]
    fn next_lex_is_rank_successor(p in arb_perm(6)) {
        let mut q = p;
        let r = rank(&p);
        if q.next_lex() {
            prop_assert_eq!(rank(&q), r + 1);
        } else {
            prop_assert_eq!(r, factorial(6) - 1);
            prop_assert_eq!(q, Permutation::identity(6));
        }
    }

    #[test]
    fn inverse_is_involution(p in arb_perm(9)) {
        prop_assert_eq!(p.inverse().inverse(), p);
        prop_assert_eq!(p.compose(&p.inverse()), Permutation::identity(9));
    }

    #[test]
    fn composition_is_associative(a in arb_perm(6), b in arb_perm(6), c in arb_perm(6)) {
        prop_assert_eq!(a.compose(&b).compose(&c), a.compose(&b.compose(&c)));
    }

    #[test]
    fn permdist_left_invariance(a in arb_perm(6), b in arb_perm(6), g in arb_perm(6)) {
        // In this crate's convention the distances compare *positions of
        // elements* (they act on inverses), so they are invariant under a
        // common relabelling of the ranks: d(g∘a, g∘b) = d(a, b).
        let ga = g.compose(&a);
        let gb = g.compose(&b);
        prop_assert_eq!(kendall_tau(&ga, &gb), kendall_tau(&a, &b));
        prop_assert_eq!(spearman_footrule(&ga, &gb), spearman_footrule(&a, &b));
        prop_assert_eq!(spearman_rho_sq(&ga, &gb), spearman_rho_sq(&a, &b));
    }

    #[test]
    fn pack_unpack_roundtrip(p in arb_perm(11)) {
        let bytes = pack(&p);
        prop_assert_eq!(bytes.len(), (11 * element_bits(11) as usize).div_ceil(8));
        prop_assert_eq!(unpack(&bytes, 11).unwrap(), p);
    }

    #[test]
    fn pack_ids_roundtrip(ids in prop::collection::vec(0u32..5000, 0..200)) {
        let bits = 13; // 5000 < 2^13
        let stream = pack_ids(&ids, bits);
        prop_assert_eq!(unpack_ids(&stream, bits, ids.len()), ids);
    }

    #[test]
    fn footrule_even_parity(a in arb_perm(8), b in arb_perm(8)) {
        // The Spearman footrule between permutations of the same set is
        // always even (displacements pair up).
        prop_assert_eq!(spearman_footrule(&a, &b) % 2, 0);
    }

    #[test]
    fn bit_writer_reader_roundtrip(values in prop::collection::vec((0u64..u64::MAX, 1u32..=64), 0..100)) {
        let mut w = BitWriter::new();
        let masked: Vec<(u64, u32)> = values
            .iter()
            .map(|&(v, b)| (if b == 64 { v } else { v & ((1u64 << b) - 1) }, b))
            .collect();
        for &(v, b) in &masked {
            w.write(v, b);
        }
        let total: usize = masked.iter().map(|&(_, b)| b as usize).sum();
        prop_assert_eq!(w.len_bits(), total);
        let (bytes, len) = w.finish();
        let mut r = BitReader::new(&bytes, len);
        for &(v, b) in &masked {
            prop_assert_eq!(r.read(b), Some(v));
        }
        prop_assert_eq!(r.read(1), None);
    }

    #[test]
    fn raw_store_random_access(perms in prop::collection::vec(arb_perm(9), 0..150)) {
        let store = RawPermStore::from_permutations(9, &perms);
        prop_assert_eq!(store.len(), perms.len());
        for (i, p) in perms.iter().enumerate() {
            prop_assert_eq!(store.get(i), *p);
        }
    }

    #[test]
    fn packed_store_random_access(perms in prop::collection::vec(arb_perm(6), 0..300)) {
        let store = PackedPermStore::from_permutations(&perms);
        prop_assert_eq!(store.len(), perms.len());
        for (i, p) in perms.iter().enumerate() {
            prop_assert_eq!(store.get(i), *p);
        }
        // The codebook never holds more entries than the stream length
        // or k!.
        prop_assert!(store.distinct() <= perms.len());
        prop_assert!(store.distinct() as u128 <= factorial(6));
    }

    #[test]
    fn huffman_store_roundtrip_and_entropy_bound(perms in prop::collection::vec(arb_perm(5), 1..300)) {
        let store = HuffmanPermStore::from_permutations(&perms);
        let decoded: Vec<Permutation> = store.iter().collect();
        prop_assert_eq!(decoded, perms.clone());
        // Shannon: entropy ≤ huffman mean < entropy + 1.
        let mut freq_map = std::collections::HashMap::new();
        for p in &perms {
            *freq_map.entry(*p).or_insert(0u64) += 1;
        }
        let freqs: Vec<u64> = freq_map.values().copied().collect();
        let h = entropy_bits(&freqs);
        // Single-symbol streams pay the forced 1-bit code.
        let mean = store.mean_bits();
        if freqs.len() > 1 {
            prop_assert!(mean + 1e-9 >= h, "mean {} < entropy {}", mean, h);
            prop_assert!(mean < h + 1.0, "mean {} >= entropy + 1 {}", mean, h + 1.0);
        } else {
            prop_assert_eq!(mean, 1.0);
        }
    }

    #[test]
    fn huffman_optimality_not_beaten_by_flat_code(freqs in prop::collection::vec(1u64..1000, 2..64)) {
        // Huffman is optimal among prefix codes, so it never loses to the
        // flat ⌈log₂ n⌉-bit code.
        let code = HuffmanCode::from_frequencies(&freqs);
        let total: u64 = freqs.iter().sum();
        let flat = u64::from(element_bits(freqs.len())) * total;
        prop_assert!(code.total_bits(&freqs) <= flat);
    }

    #[test]
    fn cayley_vs_kendall_bounds(a in arb_perm(8), b in arb_perm(8)) {
        // Every adjacent transposition is a transposition: C ≤ K; and a
        // cycle of length c costs c−1 transpositions but can need up to
        // C(c,2) adjacent swaps, so K ≤ C(k,2) always.
        let c = cayley(&a, &b);
        let k = kendall_tau(&a, &b);
        prop_assert!(c <= k);
        prop_assert!(c <= 7); // k − 1 cycles minimum 1
    }

    #[test]
    fn prefix_footrule_is_monotone_refinement(a in arb_perm(8), b in arb_perm(8), l in 1usize..=8) {
        // Truncating to the same length keeps footrule symmetric and
        // bounded by the full-permutation footrule + 2·l·(k−l) slack.
        let pa = PrefixPermutation::from_permutation(&a, l);
        let pb = PrefixPermutation::from_permutation(&b, l);
        let d = prefix_footrule(&pa, &pb);
        prop_assert_eq!(d, prefix_footrule(&pb, &pa));
        if l == 8 {
            prop_assert_eq!(d, spearman_footrule(&a, &b));
        }
        // Agreement on the prefix means distance zero and conversely.
        prop_assert_eq!(d == 0, pa == pb);
    }

    #[test]
    fn prefix_truncation_chain_is_consistent(p in arb_perm(8)) {
        let full = PrefixPermutation::from_permutation(&p, 8);
        for l in (0..8).rev() {
            let direct = PrefixPermutation::from_permutation(&p, l);
            let chained = full.truncate(l);
            prop_assert_eq!(direct, chained);
        }
    }
}
