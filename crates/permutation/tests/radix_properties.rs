//! Property suite pinning `radix == sort_unstable` over adversarial key
//! distributions.
//!
//! The radix sorter underpins the whole packed counting pipeline
//! (finalize, codebook ordering, parallel chunk merge), so its contract
//! is exact output equality with the comparison sort — checked here over
//! all-equal keys, pre-sorted and reverse-sorted input, single/empty
//! buffers, keys differing only in the top byte, genuine packed
//! permutation keys for every k in 2..=12 (`u64`) and 13..=25 (`u128`,
//! the wide pipeline), arbitrary u64 soup, and arbitrary u128 soup.
//! `scripts/check.sh` also runs this file under `--release`, where the
//! vectorized histogram loops actually engage.

use dp_permutation::{PackedKey, PackedPermutationCounter, Permutation, RadixSorter};
use proptest::prelude::*;

fn assert_radix_matches_std(keys: &[u64], significant_bits: u32) {
    let mut radixed = keys.to_vec();
    let mut expected = keys.to_vec();
    expected.sort_unstable();
    RadixSorter::new().sort_keys(&mut radixed, significant_bits);
    assert_eq!(radixed, expected, "bits = {significant_bits}, n = {}", keys.len());
}

fn assert_wide_radix_matches_std(keys: &[u128], significant_bits: u32) {
    let mut radixed = keys.to_vec();
    let mut expected = keys.to_vec();
    expected.sort_unstable();
    RadixSorter::new().sort_keys(&mut radixed, significant_bits);
    assert_eq!(radixed, expected, "bits = {significant_bits}, n = {}", keys.len());
}

/// The finalize pipeline (radix sort + run scan) must agree with a
/// std-sorted reference run scan at any key width that fits `k`.
fn assert_finalize_matches_reference<K: PackedKey>(k: usize, seeds: &[u64]) {
    let mut counter: PackedPermutationCounter<K> = PackedPermutationCounter::new(k);
    for &s in seeds {
        counter.insert(&perm_from_seed(k, s));
    }
    let summary = counter.finalize();
    let mut got: Vec<(Permutation, u64)> = summary.iter().collect();
    got.sort_unstable();
    let mut sorted: Vec<Permutation> = seeds.iter().map(|&s| perm_from_seed(k, s)).collect();
    sorted.sort_unstable();
    let mut expected: Vec<(Permutation, u64)> = Vec::new();
    for p in sorted {
        match expected.last_mut() {
            Some((q, c)) if *q == p => *c += 1,
            _ => expected.push((p, 1)),
        }
    }
    assert_eq!(got, expected, "k = {k}");
}

/// A pseudo-random permutation of 0..k from a seed (Fisher–Yates with a
/// splitmix-style stream; no external RNG needed).
fn perm_from_seed(k: usize, mut seed: u64) -> Permutation {
    let mut items: Vec<u8> = (0..k as u8).collect();
    for i in (1..k).rev() {
        seed = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0x2545_F491_4F6C_DD1D);
        let j = (seed >> 33) as usize % (i + 1);
        items.swap(i, j);
    }
    Permutation::from_slice(&items).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn arbitrary_u64_keys(keys in prop::collection::vec(any::<u64>(), 0..3000)) {
        assert_radix_matches_std(&keys, 64);
    }

    #[test]
    fn all_equal_keys(key in any::<u64>(), n in 0usize..3000) {
        assert_radix_matches_std(&vec![key; n], 64);
    }

    #[test]
    fn already_sorted_and_reverse_sorted(
        keys in prop::collection::vec(any::<u64>(), 0..3000),
    ) {
        let mut sorted = keys;
        sorted.sort_unstable();
        assert_radix_matches_std(&sorted, 64);
        sorted.reverse();
        assert_radix_matches_std(&sorted, 64);
    }

    #[test]
    fn keys_differing_only_in_the_top_byte(
        tops in prop::collection::vec(any::<u8>(), 0..3000),
        low in any::<u64>(),
    ) {
        let low = low & 0x00FF_FFFF_FFFF_FFFF;
        let keys: Vec<u64> = tops.iter().map(|&t| (u64::from(t) << 56) | low).collect();
        assert_radix_matches_std(&keys, 64);
    }

    #[test]
    fn packed_permutation_keys_every_k(
        seeds in prop::collection::vec(any::<u64>(), 1..2000),
    ) {
        for k in 2usize..=12 {
            assert_finalize_matches_reference::<u64>(k, &seeds);
        }
    }

    #[test]
    fn wide_packed_permutation_keys_every_k(
        seeds in prop::collection::vec(any::<u64>(), 1..1200),
    ) {
        // The wide (u128) pipeline across the u64/u128 seam and up to
        // the u128 capacity; 11..=12 also runs at both widths so the
        // seam is covered from both sides.
        for k in 11usize..=14 {
            assert_finalize_matches_reference::<u128>(k, &seeds);
            if k <= 12 {
                assert_finalize_matches_reference::<u64>(k, &seeds);
            }
        }
        for k in [20usize, 24, 25] {
            assert_finalize_matches_reference::<u128>(k, &seeds);
        }
    }

    #[test]
    fn arbitrary_u128_keys(lows in prop::collection::vec(any::<u64>(), 0..2000)) {
        let keys: Vec<u128> = lows
            .iter()
            .map(|&lo| {
                let hi = lo.wrapping_mul(0xC2B2_AE3D_27D4_EB4F).rotate_left(29);
                (u128::from(hi) << 64) | u128::from(lo)
            })
            .collect();
        assert_wide_radix_matches_std(&keys, 128);
    }

    #[test]
    fn wide_keys_deciding_only_in_the_high_word(
        tops in prop::collection::vec(any::<u16>(), 0..2000),
        low in any::<u64>(),
    ) {
        // Constant low word: every pass below bit 64 is a constant-digit
        // skip, the order is decided entirely above it.
        let keys: Vec<u128> =
            tops.iter().map(|&t| (u128::from(t) << 100) | u128::from(low)).collect();
        assert_wide_radix_matches_std(&keys, 128);
    }

    #[test]
    fn pairs_sort_matches_std_on_distinct_keys(
        keys in prop::collection::btree_set(any::<u64>(), 0..2000),
    ) {
        let mut pairs: Vec<(u64, u64)> =
            keys.iter().enumerate().map(|(i, &k)| (k, i as u64)).collect();
        // Shuffle deterministically so the input is not pre-sorted.
        let n = pairs.len();
        for i in (1..n).rev() {
            let j = (keys.len() as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(i as u64)
                .rotate_left(i as u32) as usize
                % (i + 1);
            pairs.swap(i, j);
        }
        let mut expected = pairs.clone();
        expected.sort_unstable();
        RadixSorter::new().sort_pairs(&mut pairs, 64);
        prop_assert_eq!(pairs, expected);
    }
}

#[test]
fn empty_and_singleton_buffers() {
    assert_radix_matches_std(&[], 64);
    assert_radix_matches_std(&[0], 64);
    assert_radix_matches_std(&[u64::MAX], 64);
    assert_radix_matches_std(&[], 0);
}

#[test]
fn packed_keys_respect_declared_significant_bits() {
    // A radix sort told "5k bits" must agree with std on keys that
    // actually use all 5k bits, for every k the packed counter accepts.
    for k in 2usize..=12 {
        let bits = 5 * k as u32;
        let keys: Vec<u64> = (0..1500u64)
            .map(|i| {
                let p = perm_from_seed(k, i.wrapping_mul(0xA24B_AED4_963E_E407));
                p.as_slice()
                    .iter()
                    .enumerate()
                    .fold(0u64, |acc, (pos, &s)| acc | (u64::from(s) << (5 * pos)))
            })
            .collect();
        assert_radix_matches_std(&keys, bits);
    }
}

#[test]
fn wide_packed_keys_respect_declared_significant_bits() {
    // Same contract at the u128 width: "5k bits" must agree with std on
    // keys genuinely using all 5k bits, for every wide-only k.
    for k in 13usize..=25 {
        let bits = <u128 as PackedKey>::key_bits(k);
        let keys: Vec<u128> = (0..1200u64)
            .map(|i| {
                let p = perm_from_seed(k, i.wrapping_mul(0xA24B_AED4_963E_E407));
                p.as_slice()
                    .iter()
                    .enumerate()
                    .fold(0u128, |acc, (pos, &s)| acc | (u128::from(s) << (5 * pos)))
            })
            .collect();
        assert_wide_radix_matches_std(&keys, bits);
    }
}
