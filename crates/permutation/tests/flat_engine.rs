//! Property tests for the flat batched kernels: the flat engine must be
//! *indistinguishable* from the per-point [`DistPermComputer`] path on
//! the same data — same permutations, same counts, for every metric and
//! any thread count.

use dp_datasets::uniform_unit_cube_flat;
use dp_datasets::VectorSet;
use dp_metric::{BatchDistance, L2Squared, LInf, TransposedSites, L1};
use dp_permutation::compute::{
    collect_counter_flat, collect_packed_flat, database_permutations_flat,
    database_permutations_flat_parallel, PACKED_MAX_K, WIDE_MAX_K,
};
use dp_permutation::{DistPermComputer, Permutation};
use proptest::prelude::*;

/// Per-point reference: [`DistPermComputer`] over owned rows, exactly as
/// the nested engine runs it.
fn reference_perms<M>(metric: &M, sites: &VectorSet, db: &VectorSet) -> Vec<Permutation>
where
    M: BatchDistance + dp_metric::Metric<Vec<f64>, Dist = dp_metric::F64Dist>,
{
    let site_rows: Vec<Vec<f64>> = sites.to_nested();
    let mut computer = DistPermComputer::new(sites.len());
    db.to_nested().iter().map(|row| computer.compute(metric, &site_rows, row)).collect()
}

fn flat_setup(n: usize, d: usize, k: usize, seed: u64) -> (VectorSet, VectorSet, TransposedSites) {
    let db = uniform_unit_cube_flat(n, d, seed);
    let sites = uniform_unit_cube_flat(k, d, seed ^ 0xABCD);
    let sites_t = TransposedSites::from_rows(sites.as_flat(), sites.dim());
    (db, sites, sites_t)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn flat_equals_per_point_for_all_metrics(
        n in 1usize..400,
        d in 1usize..6,
        k in 1usize..10,
        seed in 0u64..1_000_000,
    ) {
        let (db, sites, sites_t) = flat_setup(n, d, k, seed);
        let l1 = database_permutations_flat(&L1, &sites_t, db.as_flat());
        prop_assert_eq!(&l1, &reference_perms(&L1, &sites, &db));
        let l2 = database_permutations_flat(&L2Squared, &sites_t, db.as_flat());
        prop_assert_eq!(&l2, &reference_perms(&L2Squared, &sites, &db));
        let linf = database_permutations_flat(&LInf, &sites_t, db.as_flat());
        prop_assert_eq!(&linf, &reference_perms(&LInf, &sites, &db));
    }

    #[test]
    fn flat_parallel_deterministic_in_thread_count(
        n in 1024usize..6000,
        k in 2usize..9,
        seed in 0u64..1_000_000,
    ) {
        let (db, _, sites_t) = flat_setup(n, 3, k, seed);
        let seq = database_permutations_flat(&L2Squared, &sites_t, db.as_flat());
        for threads in [2usize, 3, 7] {
            prop_assert_eq!(
                &database_permutations_flat_parallel(&L2Squared, &sites_t, db.as_flat(), threads),
                &seq
            );
        }
    }

    #[test]
    fn packed_and_hash_counters_agree(
        n in 1usize..2000,
        d in 1usize..5,
        k in 1usize..=PACKED_MAX_K,
        seed in 0u64..1_000_000,
    ) {
        let (db, _, sites_t) = flat_setup(n, d, k, seed);
        let hashed = collect_counter_flat(&L2Squared, &sites_t, db.as_flat());
        let packed = collect_packed_flat::<u64, _>(&L2Squared, &sites_t, db.as_flat()).finalize();
        prop_assert_eq!(packed.distinct(), hashed.distinct());
        prop_assert_eq!(packed.total(), hashed.total());
        // Decoded permutation sets agree exactly.
        prop_assert_eq!(packed.unpack().sorted_permutations(), hashed.sorted_permutations());
    }

    #[test]
    fn wide_packed_and_hash_counters_agree(
        n in 1usize..1500,
        d in 1usize..5,
        k in (PACKED_MAX_K + 1)..=WIDE_MAX_K,
        seed in 0u64..1_000_000,
    ) {
        let (db, _, sites_t) = flat_setup(n, d, k, seed);
        let hashed = collect_counter_flat(&L2Squared, &sites_t, db.as_flat());
        let wide = collect_packed_flat::<u128, _>(&L2Squared, &sites_t, db.as_flat()).finalize();
        prop_assert_eq!(wide.distinct(), hashed.distinct());
        prop_assert_eq!(wide.total(), hashed.total());
        prop_assert_eq!(wide.unpack().sorted_permutations(), hashed.sorted_permutations());
    }
}
