//! Entropy coding of permutation streams — the paper's §4 open door.
//!
//! After presenting the codebook layout (⌈log₂ N⌉ bits per element) the
//! paper notes: "For smaller databases a more sophisticated structure may
//! be possible, taking into account the special structure of the set of
//! permutations."  The Table 2/3 experiments show permutation occupancy
//! is *heavily* skewed (mean ≈ 10 points per permutation with a long
//! tail), so the obvious sophistication is an entropy code over the
//! empirical distribution: a canonical Huffman code spends
//! H ≤ mean bits < H + 1 per element, where H is the empirical entropy —
//! never worse than the flat codebook by more than one bit and often far
//! better.
//!
//! [`HuffmanCode`] is a canonical Huffman code over `u32` symbols
//! (codebook ids); [`HuffmanPermStore`] couples it with a [`Codebook`]
//! into a sequential-access permutation store.  The trade-off against
//! [`crate::store::PackedPermStore`] (random access, fixed width) is
//! measured by the E13 storage experiment.

use crate::bits::{BitReader, BitWriter};
use crate::counter::PermutationCounter;
use crate::encoding::{Codebook, FlatCodebook};
use crate::perm::Permutation;
use crate::radix::RadixSorter;

/// Empirical entropy of a frequency table, in bits per symbol.
///
/// Zero-frequency symbols contribute nothing; an empty or all-zero table
/// has entropy 0.
pub fn entropy_bits(freqs: &[u64]) -> f64 {
    let total = freqs.iter().sum::<u64>();
    if total == 0 {
        return 0.0;
    }
    let total_f = total as f64;
    // Explicit sequential accumulation: the entropy sum is part of the
    // survey's bit-identity contract, so its order is spelled out in the
    // source rather than left to an iterator reduction.  Frequency-1
    // symbols dominate high-k tables (almost every permutation is
    // unique), and their term is the same expression every time, so it
    // is computed once and reused — bit-identical to recomputing it,
    // with the accumulation order unchanged.
    let mut bits = 0.0f64;
    let mut one_term = f64::NAN;
    for &f in freqs.iter().filter(|&&f| f > 0) {
        let term = if f == 1 {
            if one_term.is_nan() {
                let p = 1.0f64 / total_f;
                one_term = -p * p.log2();
            }
            one_term
        } else {
            let p = f as f64 / total_f;
            -p * p.log2()
        };
        bits += term;
    }
    bits
}

/// A canonical Huffman code over symbols `0..n`.
///
/// Symbols with zero frequency get no code and cannot be encoded.
/// A single-symbol alphabet is assigned a 1-bit code so the stream stays
/// self-delimiting.
#[derive(Debug, Clone)]
pub struct HuffmanCode {
    /// Code length per symbol; 0 = symbol absent.
    lengths: Vec<u8>,
    /// Canonical code value per symbol (MSB-first within the code).
    codes: Vec<u64>,
    /// Symbols sorted by (length, symbol) — the canonical order.
    sorted_symbols: Vec<u32>,
    /// For each length L: (first canonical code of length L, offset into
    /// `sorted_symbols` of the first symbol of length L, count).
    decode_rows: Vec<(u64, u32, u32)>,
    max_len: u8,
}

impl HuffmanCode {
    /// Builds the code from a frequency table indexed by symbol.
    pub fn from_frequencies(freqs: &[u64]) -> Self {
        let lengths = code_lengths(freqs);
        Self::from_lengths(lengths)
    }

    /// Builds the code for a [`PermutationCounter`]'s distribution, using
    /// `codebook` ids as symbols.
    ///
    /// # Panics
    /// Panics if the counter contains a permutation absent from the
    /// codebook.
    pub fn from_counter(counter: &PermutationCounter, codebook: &Codebook) -> Self {
        let mut freqs = vec![0u64; codebook.len()];
        for (p, &n) in counter.iter() {
            let id = codebook.id_of(p).expect("counter permutation missing from codebook");
            freqs[id as usize] = n;
        }
        Self::from_frequencies(&freqs)
    }

    fn from_lengths(lengths: Vec<u8>) -> Self {
        // Canonical order is (length, symbol) ascending.  Lengths fit a
        // u8, so a 256-bucket counting sort over the naturally
        // symbol-ordered scan produces exactly the order
        // `sort_unstable_by_key(|s| (length, s))` would — stable within
        // a length because symbols arrive ascending — without the
        // comparison sort (measurable at ~10⁵ coded symbols, where the
        // sort dominated the canonical build).
        let mut len_hist = [0u32; 256];
        let mut coded = 0usize;
        for &l in &lengths {
            len_hist[l as usize] += 1;
            coded += usize::from(l > 0);
        }
        let mut offsets = [0u32; 256];
        let mut sum = 0u32;
        for (off, &count) in offsets.iter_mut().zip(len_hist.iter()).skip(1) {
            *off = sum;
            sum += count;
        }
        let mut sorted_symbols: Vec<u32> = vec![0; coded];
        for (s, &l) in lengths.iter().enumerate() {
            if l > 0 {
                sorted_symbols[offsets[l as usize] as usize] = s as u32;
                offsets[l as usize] += 1;
            }
        }
        let max_len = (0..256).rfind(|&l| l > 0 && len_hist[l] > 0).unwrap_or(0) as u8;

        let mut codes = vec![0u64; lengths.len()];
        let mut decode_rows = vec![(0u64, 0u32, 0u32); max_len as usize + 1];
        let mut code: u64 = 0;
        let mut prev_len = 0u8;
        for (idx, &s) in sorted_symbols.iter().enumerate() {
            let len = lengths[s as usize];
            code <<= len - prev_len;
            if decode_rows[len as usize].2 == 0 {
                decode_rows[len as usize] = (code, idx as u32, 0);
            }
            decode_rows[len as usize].2 += 1;
            codes[s as usize] = code;
            code += 1;
            prev_len = len;
        }
        Self { lengths, codes, sorted_symbols, decode_rows, max_len }
    }

    /// Code length of `symbol` in bits, or `None` if it has no code.
    pub fn length(&self, symbol: u32) -> Option<u8> {
        match self.lengths.get(symbol as usize) {
            Some(&l) if l > 0 => Some(l),
            _ => None,
        }
    }

    /// Number of symbols with a code.
    pub fn coded_symbols(&self) -> usize {
        self.sorted_symbols.len()
    }

    /// Longest code length in bits.
    pub fn max_code_length(&self) -> u8 {
        self.max_len
    }

    /// Appends the code for `symbol` to `w`, MSB first.
    ///
    /// # Panics
    /// Panics if `symbol` has no code.
    pub fn encode_symbol(&self, symbol: u32, w: &mut BitWriter) {
        let len = self.length(symbol).expect("symbol has no Huffman code");
        let code = self.codes[symbol as usize];
        // MSB-first: emit from the top bit of the code down.
        for i in (0..len).rev() {
            w.write_bit((code >> i) & 1 == 1);
        }
    }

    /// Decodes one symbol from `r`, or `None` at (clean) end of stream.
    ///
    /// # Panics
    /// Panics on a corrupt stream (a bit pattern no code matches, or a
    /// truncated final code).
    pub fn decode_symbol(&self, r: &mut BitReader<'_>) -> Option<u32> {
        let mut code: u64 = 0;
        let mut len = 0u8;
        loop {
            let Some(bit) = r.read_bit() else {
                assert!(len == 0, "truncated Huffman stream");
                return None;
            };
            code = (code << 1) | u64::from(bit);
            len += 1;
            assert!(len <= self.max_len, "corrupt Huffman stream: no code matches");
            let (first, offset, count) = self.decode_rows[len as usize];
            if count > 0 && code >= first && code - first < u64::from(count) {
                let idx = offset as usize + (code - first) as usize;
                return Some(self.sorted_symbols[idx]);
            }
        }
    }

    /// Total bits this code spends on a stream with the given frequencies.
    pub fn total_bits(&self, freqs: &[u64]) -> u64 {
        freqs
            .iter()
            .enumerate()
            .filter(|&(_, &f)| f > 0)
            .map(|(s, &f)| f * u64::from(self.length(s as u32).expect("frequency without code")))
            .sum::<u64>()
    }

    /// Mean bits per symbol under the given frequencies.
    pub fn mean_bits(&self, freqs: &[u64]) -> f64 {
        let total = freqs.iter().sum::<u64>();
        if total == 0 {
            0.0
        } else {
            self.total_bits(freqs) as f64 / total as f64
        }
    }
}

/// Huffman code lengths for a frequency table (0 for absent symbols).
///
/// O(N log N) in the sort, O(N) after it: one stable radix pass
/// ([`RadixSorter::sort_pairs`]) puts the leaves in weight order, then
/// the classic **two-queue** merge replaces the old `BinaryHeap` —
/// merged weights emerge in non-decreasing order, so the internal nodes
/// form a second already-sorted queue and each merge step is O(1).
///
/// Deterministic and bit-identical to the heap construction it
/// replaced: the stable sort keeps equal-weight leaves in symbol order,
/// internal nodes pop in creation order, and weight ties between the
/// queues prefer the leaf — exactly the `(weight, node id)` order the
/// old heap popped in.
fn code_lengths(freqs: &[u64]) -> Vec<u8> {
    let present: Vec<u32> = (0..freqs.len() as u32).filter(|&s| freqs[s as usize] > 0).collect();
    let mut lengths = vec![0u8; freqs.len()];
    match present.len() {
        0 => return lengths,
        1 => {
            // A lone symbol still needs 1 bit for self-delimiting streams.
            lengths[present[0] as usize] = 1;
            return lengths;
        }
        _ => {}
    }

    // Count-sort the leaves by weight.  Frequency tables arrive in
    // codebook (lexicographic-id) order; the stable pair sort preserves
    // that order among equal weights.
    let mut leaves: Vec<(u64, u64)> =
        present.iter().enumerate().map(|(i, &s)| (freqs[s as usize], i as u64)).collect();
    let max_freq = leaves.iter().map(|&(f, _)| f).max().expect("non-empty");
    RadixSorter::new().sort_pairs(&mut leaves, 64 - max_freq.leading_zeros());

    // Two-queue merge.  Leaves are ids `0..leaf_count`; internal nodes
    // take ids from `leaf_count` up, in creation order, and their
    // weights are non-decreasing — so `nodes[next_node..created]` is the
    // second sorted queue and no heap is needed.
    // Pops the lighter front of the two queues; `<=` on a weight tie
    // takes the leaf — its id is always smaller than any internal
    // node's, matching the old heap's `(weight, id)` order.
    fn take_min(
        leaves: &[(u64, u64)],
        node_weights: &[u64],
        leaf_count: u32,
        next_leaf: &mut usize,
        next_node: &mut usize,
    ) -> (u64, u32) {
        let leaf = leaves.get(*next_leaf).map(|&(w, i)| (w, i as u32));
        let node = node_weights.get(*next_node).map(|&w| (w, leaf_count + *next_node as u32));
        match (leaf, node) {
            (Some((lw, li)), Some((nw, _))) if lw <= nw => {
                *next_leaf += 1;
                (lw, li)
            }
            (Some((lw, li)), None) => {
                *next_leaf += 1;
                (lw, li)
            }
            (_, Some((nw, ni))) => {
                *next_node += 1;
                (nw, ni)
            }
            (None, None) => unreachable!("merge loop never overdraws the queues"),
        }
    }

    let leaf_count = present.len() as u32;
    let mut nodes: Vec<(u32, u32)> = Vec::with_capacity(present.len() - 1);
    let mut node_weights: Vec<u64> = Vec::with_capacity(present.len() - 1);
    let mut next_leaf = 0usize;
    let mut next_node = 0usize;
    for _ in 1..leaf_count {
        let (fa, a) = take_min(&leaves, &node_weights, leaf_count, &mut next_leaf, &mut next_node);
        let (fb, b) = take_min(&leaves, &node_weights, leaf_count, &mut next_leaf, &mut next_node);
        nodes.push((a, b));
        node_weights.push(fa + fb);
    }
    debug_assert!(node_weights.windows(2).all(|w| w[0] <= w[1]), "node queue must stay sorted");

    // Depth assignment by one reverse scan: the root is the last node
    // created, and every child id is smaller than its parent's, so
    // parents are always visited first.  Leaf ids index `present`
    // directly (they were carried through the sort as pair values).
    let mut depths = vec![0u8; nodes.len()];
    for parent in (0..nodes.len()).rev() {
        let depth = depths[parent];
        assert!(depth < 64, "Huffman depth exceeds 64 bits");
        let (a, b) = nodes[parent];
        for child in [a, b] {
            if child < leaf_count {
                lengths[present[child as usize] as usize] = depth + 1;
            } else {
                depths[(child - leaf_count) as usize] = depth + 1;
            }
        }
    }
    lengths
}

/// A sequential-access permutation store at (near-)entropy cost.
///
/// Layout: codebook table + canonical Huffman code + one variable-length
/// id code per element.  No random access — decoding is a front-to-back
/// scan — which is the price of beating the flat ⌈log₂ N⌉ layout.
#[derive(Debug, Clone)]
pub struct HuffmanPermStore {
    codebook: FlatCodebook,
    code: HuffmanCode,
    data: Vec<u8>,
    len_bits: usize,
    len: usize,
}

impl HuffmanPermStore {
    /// Builds the store from a permutation stream (two passes: count,
    /// then encode).
    ///
    /// The codebook is a [`FlatCodebook`] — ids are lexicographic ranks
    /// from one sorted-run scan, no hash interning — and the frequency
    /// table falls out of the same scan.  Any Huffman code built on a
    /// permuted frequency table is equally optimal, so the per-stream
    /// cost ([`Self::mean_bits`]) is the same as the old first-seen-id
    /// layout; only the id numbering inside the stream differs.
    pub fn from_permutations(perms: &[Permutation]) -> Self {
        let (codebook, freqs) = FlatCodebook::from_permutations_with_counts(perms);
        let code = HuffmanCode::from_frequencies(&freqs);
        let mut w = BitWriter::new();
        for p in perms {
            let id = codebook.id_of(p).expect("interned");
            code.encode_symbol(id, &mut w);
        }
        let (data, len_bits) = w.finish();
        Self { codebook, code, data, len_bits, len: perms.len() }
    }

    /// Number of stored permutations.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of distinct permutations.
    pub fn distinct(&self) -> usize {
        self.codebook.len()
    }

    /// Mean bits per element actually spent by the encoded stream.
    pub fn mean_bits(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.len_bits as f64 / self.len as f64
        }
    }

    /// The underlying canonical code.
    pub fn code(&self) -> &HuffmanCode {
        &self.code
    }

    /// Decodes the whole stream front to back.
    pub fn iter(&self) -> impl Iterator<Item = Permutation> + '_ {
        let mut reader = BitReader::new(&self.data, self.len_bits);
        let mut produced = 0usize;
        std::iter::from_fn(move || {
            if produced == self.len {
                return None;
            }
            produced += 1;
            let id = self.code.decode_symbol(&mut reader).expect("stream holds len symbols");
            Some(*self.codebook.permutation(id).expect("id interned"))
        })
    }

    /// Heap bytes: encoded stream + codebook table + code lengths.
    ///
    /// Accounted like [`crate::store::PackedPermStore::heap_bytes`].  A
    /// *canonical* code is fully determined by its per-symbol lengths,
    /// so the code adds only one byte per distinct permutation.
    pub fn heap_bytes(&self) -> usize {
        self.data.len()
            + self.codebook.len() * std::mem::size_of::<Permutation>()
            + self.codebook.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::element_bits;
    use crate::lehmer::unrank;

    #[test]
    fn entropy_of_uniform_and_degenerate() {
        assert_eq!(entropy_bits(&[]), 0.0);
        assert_eq!(entropy_bits(&[0, 0]), 0.0);
        assert_eq!(entropy_bits(&[7]), 0.0);
        let h = entropy_bits(&[1, 1, 1, 1]);
        assert!((h - 2.0).abs() < 1e-12);
    }

    #[test]
    fn kraft_equality_holds() {
        // An optimal prefix-free code on ≥2 symbols satisfies
        // Σ 2^{-len} = 1 exactly.
        let freqs = [5u64, 9, 12, 13, 16, 45];
        let code = HuffmanCode::from_frequencies(&freqs);
        let kraft: f64 = (0..freqs.len() as u32)
            .filter_map(|s| code.length(s))
            .map(|l| 0.5f64.powi(i32::from(l)))
            .sum();
        assert!((kraft - 1.0).abs() < 1e-12, "kraft sum {kraft}");
    }

    #[test]
    fn classic_textbook_code_lengths() {
        // Frequencies 5,9,12,13,16,45: the classic example; the symbol
        // with weight 45 gets 1 bit, the rest 3–4.
        let freqs = [5u64, 9, 12, 13, 16, 45];
        let code = HuffmanCode::from_frequencies(&freqs);
        assert_eq!(code.length(5), Some(1));
        assert_eq!(code.length(0), Some(4));
        assert_eq!(code.length(1), Some(4));
        let total = code.total_bits(&freqs);
        assert_eq!(total, 5 * 4 + 9 * 4 + 12 * 3 + 13 * 3 + 16 * 3 + 45);
    }

    #[test]
    fn mean_bits_within_one_of_entropy() {
        let freqs: Vec<u64> = (1..=40u64).map(|i| i * i).collect();
        let code = HuffmanCode::from_frequencies(&freqs);
        let h = entropy_bits(&freqs);
        let mean = code.mean_bits(&freqs);
        assert!(mean >= h - 1e-9, "mean {mean} below entropy {h}");
        assert!(mean < h + 1.0, "mean {mean} not within 1 bit of entropy {h}");
    }

    #[test]
    fn roundtrip_skewed_stream() {
        let freqs = [100u64, 10, 5, 1, 1, 0, 3];
        let code = HuffmanCode::from_frequencies(&freqs);
        let stream: Vec<u32> = (0..freqs.len() as u32)
            .flat_map(|s| std::iter::repeat_n(s, freqs[s as usize] as usize))
            .collect();
        let mut w = BitWriter::new();
        for &s in &stream {
            code.encode_symbol(s, &mut w);
        }
        let (bytes, len) = w.finish();
        assert_eq!(len as u64, code.total_bits(&freqs));
        let mut r = BitReader::new(&bytes, len);
        for &s in &stream {
            assert_eq!(code.decode_symbol(&mut r), Some(s));
        }
        assert_eq!(code.decode_symbol(&mut r), None);
    }

    #[test]
    fn single_symbol_alphabet_gets_one_bit() {
        let code = HuffmanCode::from_frequencies(&[0, 42, 0]);
        assert_eq!(code.length(1), Some(1));
        assert_eq!(code.coded_symbols(), 1);
        let mut w = BitWriter::new();
        code.encode_symbol(1, &mut w);
        code.encode_symbol(1, &mut w);
        let (bytes, len) = w.finish();
        let mut r = BitReader::new(&bytes, len);
        assert_eq!(code.decode_symbol(&mut r), Some(1));
        assert_eq!(code.decode_symbol(&mut r), Some(1));
        assert_eq!(code.decode_symbol(&mut r), None);
    }

    #[test]
    #[should_panic(expected = "no Huffman code")]
    fn encoding_absent_symbol_panics() {
        let code = HuffmanCode::from_frequencies(&[1, 0, 1]);
        code.encode_symbol(1, &mut BitWriter::new());
    }

    #[test]
    fn perm_store_roundtrips_and_beats_flat_ids_on_skewed_data() {
        // 90% of elements share one permutation — the skew Table 2
        // exhibits ("about 10 database points per permutation").
        let kfact: u128 = (1..=6u128).product();
        let mut perms = vec![unrank(6, 0); 900];
        perms.extend((0..100u128).map(|i| unrank(6, (i * 11) % kfact)));
        let store = HuffmanPermStore::from_permutations(&perms);
        assert_eq!(store.len(), 1000);
        let decoded: Vec<_> = store.iter().collect();
        assert_eq!(decoded, perms);
        let flat_bits = f64::from(element_bits(store.distinct()));
        assert!(store.mean_bits() < flat_bits, "huffman {} >= flat {flat_bits}", store.mean_bits());
    }

    #[test]
    fn empty_perm_store() {
        let store = HuffmanPermStore::from_permutations(&[]);
        assert!(store.is_empty());
        assert_eq!(store.iter().count(), 0);
        assert_eq!(store.mean_bits(), 0.0);
    }

    /// The `BinaryHeap` construction the two-queue build replaced, kept
    /// as a test oracle: the rewrite must reproduce its lengths bit for
    /// bit (same merge order, not merely the same total cost).
    fn heap_code_lengths(freqs: &[u64]) -> Vec<u8> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let present: Vec<u32> =
            (0..freqs.len() as u32).filter(|&s| freqs[s as usize] > 0).collect();
        let mut lengths = vec![0u8; freqs.len()];
        match present.len() {
            0 => return lengths,
            1 => {
                lengths[present[0] as usize] = 1;
                return lengths;
            }
            _ => {}
        }
        let mut nodes: Vec<(u32, u32)> = Vec::new();
        let mut heap: BinaryHeap<Reverse<(u64, u32)>> = present
            .iter()
            .enumerate()
            .map(|(i, &s)| Reverse((freqs[s as usize], i as u32)))
            .collect();
        let leaf_count = present.len() as u32;
        while heap.len() > 1 {
            let Reverse((fa, a)) = heap.pop().unwrap();
            let Reverse((fb, b)) = heap.pop().unwrap();
            let id = leaf_count + nodes.len() as u32;
            nodes.push((a, b));
            heap.push(Reverse((fa + fb, id)));
        }
        let Reverse((_, root)) = heap.pop().unwrap();
        let mut stack = vec![(root, 0u8)];
        while let Some((node, depth)) = stack.pop() {
            if node < leaf_count {
                lengths[present[node as usize] as usize] = depth.max(1);
            } else {
                let (a, b) = nodes[(node - leaf_count) as usize];
                stack.push((a, depth + 1));
                stack.push((b, depth + 1));
            }
        }
        lengths
    }

    #[test]
    fn two_queue_matches_heap_construction_bit_for_bit() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x48_75_66_66);
        for case in 0..200 {
            let n = 1 + (case % 64);
            let freqs: Vec<u64> = (0..n)
                .map(|_| {
                    // Mix zeros, heavy ties, and a skewed tail.
                    match rng.random::<u64>() % 4 {
                        0 => 0,
                        1 => 7,
                        2 => rng.random::<u64>() % 16,
                        _ => rng.random::<u64>() % 100_000,
                    }
                })
                .collect();
            assert_eq!(code_lengths(&freqs), heap_code_lengths(&freqs), "case {case}: {freqs:?}");
        }
    }

    #[test]
    fn deterministic_lengths() {
        let freqs: Vec<u64> = (0..100).map(|i| (i * 31 + 7) % 50 + 1).collect();
        let a = HuffmanCode::from_frequencies(&freqs);
        let b = HuffmanCode::from_frequencies(&freqs);
        for s in 0..freqs.len() as u32 {
            assert_eq!(a.length(s), b.length(s));
        }
    }
}
