//! A local FxHash-style hasher for hot permutation-counting paths.
//!
//! Distinct-permutation counting hashes millions of 33-byte `Permutation`
//! values; SipHash (std's default) is a measurable cost there, and HashDoS
//! resistance is irrelevant for an offline counting experiment.  This is
//! the well-known Firefox/rustc "Fx" multiply-rotate hash, implemented
//! locally (~40 lines) rather than pulling a non-approved dependency.

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx multiply-rotate hasher.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let (chunk, rest) = bytes.split_at(8);
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
            bytes = rest;
        }
        if bytes.len() >= 4 {
            let (chunk, rest) = bytes.split_at(4);
            self.add_to_hash(u64::from(u32::from_le_bytes(
                chunk.try_into().expect("4-byte chunk"),
            )));
            bytes = rest;
        }
        for &b in bytes {
            self.add_to_hash(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perm::Permutation;
    use std::hash::{BuildHasher, Hash};

    fn fx_hash_of<T: Hash>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn equal_values_hash_equal() {
        let a = Permutation::from_slice(&[1, 0, 2]).unwrap();
        let b = Permutation::from_slice(&[1, 0, 2]).unwrap();
        assert_eq!(fx_hash_of(&a), fx_hash_of(&b));
    }

    #[test]
    fn different_values_usually_hash_differently() {
        // All 120 permutations of 5 elements should map to 120 hashes; a
        // single collision here would indicate a broken mixer.
        let hashes: std::collections::HashSet<u64> =
            Permutation::all(5).map(|p| fx_hash_of(&p)).collect();
        assert_eq!(hashes.len(), 120);
    }

    #[test]
    fn byte_stream_lengths_all_covered() {
        // Exercise the 8/4/1-byte tails.
        for len in 0..20usize {
            let bytes: Vec<u8> = (0..len as u8).collect();
            let mut h = FxHasher::default();
            h.write(&bytes);
            let _ = h.finish();
        }
    }

    #[test]
    fn fx_set_and_map_work() {
        let mut set: FxHashSet<u64> = FxHashSet::default();
        set.insert(42);
        assert!(set.contains(&42));
        let mut map: FxHashMap<u32, &str> = FxHashMap::default();
        map.insert(1, "one");
        assert_eq!(map.get(&1), Some(&"one"));
    }
}
