//! Streaming sharded counting: distinct-permutation counts without ever
//! holding n keys.
//!
//! The in-memory pipeline ([`crate::counter::PackedPermutationCounter`])
//! buffers every observation's packed key and sorts once — `O(n)` memory,
//! which caps the reachable database size long before the arithmetic
//! does.  [`ShardedCounter`] replaces the buffer with a fixed-size
//! **shard**: inserts append to a `shard_rows`-key block, and each full
//! block is radix-sorted (scratch reused across shards) and run-length
//! merged into a sorted `(key, count)` **frontier**.  The frontier is the
//! summary under construction — one entry per distinct permutation seen
//! so far, ascending key order — so [`ShardedCounter::finalize`] just
//! wraps it in a [`PackedCountSummary`].
//!
//! Memory is bounded by `shard_rows` keys of sort buffer + scratch plus
//! one `(key, count)` pair per **distinct** permutation (twice that,
//! transiently, while a shard merges).  Since the paper's whole point is
//! that distinct ≪ n ("about 10 database points per permutation", §5),
//! the frontier is the small side of the ledger and n drops out of the
//! footprint entirely.
//!
//! Equivalence with the in-memory engine is exact, not approximate: a
//! run-length merge of per-shard sorted multisets is the run-length scan
//! of the sorted concatenation, so the finalized summary — distinct keys,
//! occupancies, total, and every float derived from them downstream — is
//! bit-for-bit the one [`PackedPermutationCounter::finalize`] produces
//! (`tests/sharded_equivalence.rs` pins this across shard sizes, widths
//! and thread counts).
//!
//! [`PackedPermutationCounter::finalize`]: crate::counter::PackedPermutationCounter::finalize

use crate::counter::PackedCountSummary;
use crate::key::PackedKey;
use crate::radix::RadixSorter;

/// Bounded-memory occurrence counter over packed permutation keys.
///
/// Drop-in for the collect-then-finalize flow of
/// [`crate::counter::PackedPermutationCounter`] when n keys must never
/// be resident: feed keys with [`Self::insert_key`], take the summary
/// with [`Self::finalize`].  See the [module docs](self) for the memory
/// contract and the equivalence argument.
#[derive(Debug, Clone)]
pub struct ShardedCounter<K: PackedKey = u64> {
    k: usize,
    shard_rows: usize,
    /// Unsorted keys of the shard in flight — never exceeds `shard_rows`.
    buf: Vec<K>,
    /// Sorted `(key, count)` runs of everything flushed so far.
    frontier: Vec<(K, u64)>,
    /// Merge output scratch, swapped with `frontier` each flush.
    merged: Vec<(K, u64)>,
    sorter: RadixSorter<K>,
    total: u64,
    peak_frontier: usize,
}

impl<K: PackedKey> ShardedCounter<K> {
    /// An empty counter for permutations of length `k`, flushing every
    /// `shard_rows` inserts.
    ///
    /// # Panics
    /// Panics if `shard_rows` is 0 or `k` exceeds the key width's
    /// capacity (`K::MAX_K`).
    pub fn new(k: usize, shard_rows: usize) -> Self {
        assert!(shard_rows > 0, "shard_rows must be at least 1");
        assert!(
            k <= K::MAX_K,
            "k = {k} exceeds MAX_K = {} for {}-bit packed keys",
            K::MAX_K,
            K::BITS
        );
        Self {
            k,
            shard_rows,
            buf: Vec::with_capacity(shard_rows),
            frontier: Vec::new(),
            merged: Vec::new(),
            sorter: RadixSorter::new(),
            total: 0,
            peak_frontier: 0,
        }
    }

    /// Permutation length k.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Shard size this counter flushes at.
    pub fn shard_rows(&self) -> usize {
        self.shard_rows
    }

    /// Total number of observations so far (flushed or buffered).
    pub fn total(&self) -> u64 {
        self.total + self.buf.len() as u64
    }

    /// Records one occurrence of a packed key (the
    /// [`crate::pack_perm`] lexicographic layout), flushing the shard
    /// if this insert fills it.
    #[inline]
    pub fn insert_key(&mut self, key: K) {
        self.buf.push(key);
        if self.buf.len() == self.shard_rows {
            self.flush();
        }
    }

    /// Sorts and merges the in-flight shard into the frontier now, even
    /// if it is only partially full.  A no-op on an empty shard;
    /// [`Self::finalize`] calls this, so explicit calls are only needed
    /// to read exact [`Self::frontier_entries`] mid-stream.
    pub fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        self.sorter.sort_keys(&mut self.buf, K::key_bits(self.k));
        self.merged.clear();
        self.merged.reserve(self.frontier.len() + self.buf.len());
        let mut fi = 0usize;
        let mut bi = 0usize;
        while bi < self.buf.len() {
            let key = self.buf[bi];
            let run_start = bi;
            while bi < self.buf.len() && self.buf[bi] == key {
                bi += 1;
            }
            let run = (bi - run_start) as u64;
            while fi < self.frontier.len() && self.frontier[fi].0 < key {
                self.merged.push(self.frontier[fi]);
                fi += 1;
            }
            if fi < self.frontier.len() && self.frontier[fi].0 == key {
                self.merged.push((key, self.frontier[fi].1 + run));
                fi += 1;
            } else {
                self.merged.push((key, run));
            }
        }
        self.merged.extend_from_slice(&self.frontier[fi..]);
        std::mem::swap(&mut self.frontier, &mut self.merged);
        self.total += self.buf.len() as u64;
        self.buf.clear();
        self.peak_frontier = self.peak_frontier.max(self.frontier.len());
    }

    /// Distinct permutations currently on the frontier (excluding any
    /// unflushed shard contents).
    pub fn frontier_entries(&self) -> usize {
        self.frontier.len()
    }

    /// Largest frontier length any flush has produced — with
    /// [`Self::shard_rows`], the counter's whole memory story.
    pub fn peak_frontier_entries(&self) -> usize {
        self.peak_frontier
    }

    /// Flushes the tail shard and returns the finalized summary —
    /// identical to collecting every key in memory and finalizing.
    pub fn finalize(mut self) -> PackedCountSummary<K> {
        self.flush();
        PackedCountSummary::from_counted_runs(self.k, self.frontier)
    }

    /// Flushes the tail shard and surrenders the raw frontier — the
    /// parallel collectors merge per-worker frontiers with
    /// [`merge_counted_run_sets`] before building one summary.
    pub(crate) fn into_runs(mut self) -> Vec<(K, u64)> {
        self.flush();
        self.frontier
    }
}

/// Merges sorted `(key, count)` run sets pairwise until one remains,
/// summing counts on equal keys — the counted-run generalization of the
/// parallel collectors' sorted-run merge, `O(D log t)` for `t` sets of
/// ≤ D distinct keys each.
pub(crate) fn merge_counted_run_sets<K: PackedKey>(mut runs: Vec<Vec<(K, u64)>>) -> Vec<(K, u64)> {
    while runs.len() > 1 {
        let mut next = Vec::with_capacity(runs.len().div_ceil(2));
        let mut it = runs.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(merge_two_run_sets(&a, &b)),
                None => next.push(a),
            }
        }
        runs = next;
    }
    runs.pop().unwrap_or_default()
}

fn merge_two_run_sets<K: PackedKey>(a: &[(K, u64)], b: &[(K, u64)]) -> Vec<(K, u64)> {
    let mut out = Vec::with_capacity(a.len().max(b.len()));
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push((a[i].0, a[i].1 + b[j].1));
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::PackedPermutationCounter;

    fn weyl_keys(n: usize, k: usize, salt: u64) -> Vec<u64> {
        // Pseudo-random valid packed permutations: rotate the identity by
        // a Weyl stream and swap two fields for irregular multiplicities.
        let mut items: Vec<u8> = (0..k as u8).collect();
        (0..n)
            .map(|i| {
                let s = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15 ^ salt) >> 7;
                items.rotate_left(s as usize % k.max(1));
                let p = crate::perm::Permutation::from_slice(&items).unwrap();
                crate::counter::pack_perm::<u64>(&p)
            })
            .collect()
    }

    fn in_memory_summary(k: usize, keys: &[u64]) -> PackedCountSummary<u64> {
        let mut c = PackedPermutationCounter::<u64>::new(k);
        for &key in keys {
            c.insert_key(key);
        }
        c.finalize()
    }

    #[test]
    fn sharded_matches_in_memory_across_shard_sizes() {
        let k = 6;
        let n = 997; // prime: never a multiple of any shard size tested
        let keys = weyl_keys(n, k, 3);
        let expected = in_memory_summary(k, &keys);
        for shard_rows in [1usize, n - 1, n, n + 1, 64] {
            let mut sharded = ShardedCounter::<u64>::new(k, shard_rows);
            for &key in &keys {
                sharded.insert_key(key);
            }
            assert_eq!(sharded.total(), n as u64, "shard_rows = {shard_rows}");
            let summary = sharded.finalize();
            assert_eq!(summary.distinct(), expected.distinct(), "shard_rows = {shard_rows}");
            assert_eq!(summary.total(), expected.total());
            assert_eq!(summary.lexicographic_counts(), expected.lexicographic_counts());
            assert_eq!(
                summary.distinct_keys().collect::<Vec<_>>(),
                expected.distinct_keys().collect::<Vec<_>>(),
            );
            assert_eq!(summary.mean_occupancy().to_bits(), expected.mean_occupancy().to_bits());
        }
    }

    #[test]
    fn frontier_is_bounded_by_distinct_count() {
        let k = 5;
        let keys = weyl_keys(5000, k, 9);
        let mut sharded = ShardedCounter::<u64>::new(k, 128);
        for &key in &keys {
            sharded.insert_key(key);
        }
        sharded.flush();
        let frontier = sharded.frontier_entries();
        let peak = sharded.peak_frontier_entries();
        let summary = sharded.finalize();
        assert_eq!(frontier, summary.distinct());
        // The frontier only ever grows toward the final distinct count.
        assert_eq!(peak, summary.distinct());
    }

    #[test]
    fn merge_counted_run_sets_sums_equal_keys() {
        let merged = merge_counted_run_sets::<u64>(vec![
            vec![(1, 2), (5, 1)],
            vec![(1, 1), (3, 4)],
            vec![(5, 7)],
        ]);
        assert_eq!(merged, vec![(1, 3), (3, 4), (5, 8)]);
        assert_eq!(merge_counted_run_sets::<u64>(Vec::new()), Vec::new());
    }

    #[test]
    #[should_panic(expected = "shard_rows")]
    fn zero_shard_rows_rejected() {
        let _ = ShardedCounter::<u64>::new(4, 0);
    }
}
