//! Random-access permutation stores realising the paper's storage claims.
//!
//! Section 4's practical consequence: an index holding one distance
//! permutation per database element should not spend ⌈log₂ k!⌉ bits per
//! element when the space admits only N ≪ k! distinct permutations.  Two
//! physical layouts are provided, both with O(1) random access:
//!
//! * [`RawPermStore`] — each permutation packed positionally at
//!   `k·⌈log₂ k⌉` bits (the unrestricted O(nk log k)-bit layout the paper
//!   credits to Chávez–Figueroa–Navarro);
//! * [`PackedPermStore`] — a [`Codebook`] of the N distinct permutations
//!   plus ⌈log₂ N⌉ bits per element (the paper's improvement; Θ(nd log k)
//!   bits in d-dimensional Euclidean space by Corollary 8).
//!
//! For the entropy-optimal but sequential-access layout, see
//! [`crate::huffman`].  All three are compared byte-for-byte by the E13
//! storage experiment and the `storage_formats` example.

use crate::bits::{read_bits_at, BitWriter};
use crate::encoding::{element_bits, Codebook};
use crate::perm::{Permutation, MAX_K};

/// Fixed-width positional store: `k·⌈log₂ k⌉` bits per permutation.
#[derive(Debug, Clone)]
pub struct RawPermStore {
    data: Vec<u8>,
    k: usize,
    len: usize,
}

impl RawPermStore {
    /// Packs `perms`, all of which must have length `k`.
    ///
    /// # Panics
    /// Panics if any permutation's length differs from `k`, or `k > MAX_K`.
    pub fn from_permutations(k: usize, perms: &[Permutation]) -> Self {
        assert!(k <= MAX_K, "k = {k} exceeds MAX_K = {MAX_K}");
        let bits = element_bits(k);
        let mut w = BitWriter::with_capacity(perms.len() * k * bits as usize);
        for p in perms {
            assert_eq!(p.len(), k, "permutation length {} != k = {k}", p.len());
            for &e in p.as_slice() {
                w.write(u64::from(e), bits);
            }
        }
        let (data, _) = w.finish();
        Self { data, k, len: perms.len() }
    }

    /// Number of stored permutations.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff no permutations are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The permutation length k.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Bits consumed per stored permutation.
    pub fn bits_per_element(&self) -> u32 {
        self.k as u32 * element_bits(self.k)
    }

    /// Retrieves permutation `i` in O(k).
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> Permutation {
        assert!(i < self.len, "index {i} out of range (len {})", self.len);
        let bits = element_bits(self.k);
        let mut items = [0u8; MAX_K];
        if bits == 0 {
            // k <= 1: the only permutation is the identity.
            return Permutation::identity(self.k);
        }
        let base = i * self.k * bits as usize;
        for (j, slot) in items.iter_mut().take(self.k).enumerate() {
            *slot = read_bits_at(&self.data, base + j * bits as usize, bits) as u8;
        }
        Permutation::from_slice(&items[..self.k]).expect("store holds valid permutations")
    }

    /// Iterates over all stored permutations in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = Permutation> + '_ {
        (0..self.len).map(|i| self.get(i))
    }

    /// Heap bytes held by the packed buffer.
    pub fn heap_bytes(&self) -> usize {
        self.data.len()
    }
}

/// Codebook store: one ⌈log₂ N⌉-bit id per element plus the table of the
/// N distinct permutations.
///
/// This is the paper's storage strategy verbatim: "the bound can be
/// achieved simply by storing the full permutations in a separate table
/// and storing the index numbers into that table alongside the points"
/// (§4).
#[derive(Debug, Clone)]
pub struct PackedPermStore {
    codebook: Codebook,
    data: Vec<u8>,
    bits: u32,
    len: usize,
}

impl PackedPermStore {
    /// Builds the codebook and packs ids in two passes over `perms`.
    pub fn from_permutations(perms: &[Permutation]) -> Self {
        let codebook: Codebook = perms.iter().copied().collect();
        let bits = codebook.id_bits();
        let mut w = BitWriter::with_capacity(perms.len() * bits as usize);
        for p in perms {
            let id = codebook.id_of(p).expect("interned in first pass");
            w.write(u64::from(id), bits);
        }
        let (data, _) = w.finish();
        Self { codebook, data, bits, len: perms.len() }
    }

    /// Number of stored permutations.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff no permutations are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of *distinct* permutations (the paper's N).
    pub fn distinct(&self) -> usize {
        self.codebook.len()
    }

    /// Bits per element: ⌈log₂ N⌉.
    pub fn bits_per_element(&self) -> u32 {
        self.bits
    }

    /// The codebook id stored at position `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn id_at(&self, i: usize) -> u32 {
        assert!(i < self.len, "index {i} out of range (len {})", self.len);
        read_bits_at(&self.data, i * self.bits as usize, self.bits) as u32
    }

    /// Retrieves permutation `i` in O(1).
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> Permutation {
        *self.codebook.permutation(self.id_at(i)).expect("id interned at build")
    }

    /// Iterates over all stored permutations in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = Permutation> + '_ {
        (0..self.len).map(|i| self.get(i))
    }

    /// Borrows the codebook (e.g. to share with a Huffman store).
    pub fn codebook(&self) -> &Codebook {
        &self.codebook
    }

    /// Heap bytes: packed ids + the codebook's permutation table.
    ///
    /// The codebook side counts the dense `from_id` table
    /// (`N × size_of::<Permutation>()`); the hash index used for interning
    /// is build-time scaffolding and excluded, matching how the paper
    /// accounts storage (table + ids).
    pub fn heap_bytes(&self) -> usize {
        self.data.len() + self.codebook.len() * std::mem::size_of::<Permutation>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lehmer::unrank;

    fn sample_perms(k: usize, n: usize) -> Vec<Permutation> {
        // Deterministic, heavily repetitive stream: cycle over k! ranks
        // with a stride, so stores see realistic duplicate-rich data.
        let kfact: u128 = (1..=k as u128).product();
        (0..n).map(|i| unrank(k, (i as u128 * 7) % kfact)).collect()
    }

    #[test]
    fn raw_store_roundtrips() {
        let perms = sample_perms(5, 200);
        let store = RawPermStore::from_permutations(5, &perms);
        assert_eq!(store.len(), 200);
        assert_eq!(store.k(), 5);
        for (i, p) in perms.iter().enumerate() {
            assert_eq!(store.get(i), *p);
        }
        let collected: Vec<_> = store.iter().collect();
        assert_eq!(collected, perms);
    }

    #[test]
    fn raw_store_bits_match_formula() {
        let perms = sample_perms(5, 64);
        let store = RawPermStore::from_permutations(5, &perms);
        // k = 5 needs ⌈log₂ 5⌉ = 3 bits per element, 15 per permutation.
        assert_eq!(store.bits_per_element(), 15);
        assert_eq!(store.heap_bytes(), (64usize * 15).div_ceil(8));
    }

    #[test]
    fn raw_store_handles_k_zero_and_one() {
        let empty = RawPermStore::from_permutations(0, &[Permutation::identity(0); 3]);
        assert_eq!(empty.get(1), Permutation::identity(0));
        assert_eq!(empty.bits_per_element(), 0);
        let one = RawPermStore::from_permutations(1, &[Permutation::identity(1); 3]);
        assert_eq!(one.get(2), Permutation::identity(1));
        assert_eq!(one.heap_bytes(), 0);
    }

    #[test]
    fn packed_store_roundtrips_and_is_smaller() {
        let perms = sample_perms(6, 500);
        let packed = PackedPermStore::from_permutations(&perms);
        let raw = RawPermStore::from_permutations(6, &perms);
        assert_eq!(packed.len(), 500);
        for (i, p) in perms.iter().enumerate() {
            assert_eq!(packed.get(i), *p, "mismatch at {i}");
        }
        // Only ≤ k! = 720 distinct values appear but the cycle stride
        // limits it further; either way ids are narrower than raw records.
        assert!(packed.bits_per_element() < raw.bits_per_element());
        assert!(packed.distinct() <= 720);
    }

    #[test]
    fn packed_store_ids_are_dense() {
        let perms = sample_perms(4, 100);
        let store = PackedPermStore::from_permutations(&perms);
        for i in 0..store.len() {
            assert!((store.id_at(i) as usize) < store.distinct());
        }
    }

    #[test]
    fn packed_store_single_distinct_permutation_needs_zero_bits() {
        let perms = vec![Permutation::identity(7); 42];
        let store = PackedPermStore::from_permutations(&perms);
        assert_eq!(store.distinct(), 1);
        assert_eq!(store.bits_per_element(), 0);
        assert_eq!(store.get(41), Permutation::identity(7));
    }

    #[test]
    fn empty_stores() {
        let raw = RawPermStore::from_permutations(3, &[]);
        assert!(raw.is_empty());
        let packed = PackedPermStore::from_permutations(&[]);
        assert!(packed.is_empty());
        assert_eq!(packed.distinct(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn raw_get_out_of_range_panics() {
        RawPermStore::from_permutations(3, &[]).get(0);
    }

    #[test]
    #[should_panic(expected = "length")]
    fn raw_store_rejects_mixed_lengths() {
        let perms = vec![Permutation::identity(3), Permutation::identity(4)];
        RawPermStore::from_permutations(3, &perms);
    }
}
