//! # dp-permutation — distance-permutation machinery
//!
//! Implements the object at the centre of *Counting distance permutations*
//! (Skala, SISAP'08 / JDA 2009): given k fixed **sites** x₁…x_k in a metric
//! space, the **distance permutation** Π_y of a point y is the permutation
//! of site indices sorted by increasing distance from y, ties broken by
//! smaller site index (the paper's Definition, §1).
//!
//! ## The width-generic packed pipeline
//!
//! The flat engine's counting path never materialises a [`Permutation`]:
//! each database row becomes one **packed key** — a machine word holding
//! the permutation in 5-bit fields ([`key::PackedKey`], sealed over `u64`
//! for k ≤ [`PACKED_MAX_K`] = 12 and `u128` for k ≤ [`WIDE_MAX_K`] = 25).
//! Every stage is generic over that width and monomorphized once per
//! workload by [`for_packed_k!`], so the per-row loops carry no width
//! branches:
//!
//! 1. the batched kernels fuse ranking and packing per 4-row tile
//!    ([`compute::packed_keys_flat`] — one pairwise-halved compare
//!    schedule, dispatched to a constant-`k` instantiation so the whole
//!    accumulator tile is register-resident, folds each site's rank
//!    straight into the key lanes with no rank-array round-trip; tails
//!    of `n mod 4` rows run the same path on a padded tile);
//! 2. [`radix`] sorts the key buffer in at most `⌈5k/12⌉` LSD
//!    12-bit-digit passes (5 for `u64` at k = 12, 11 for `u128` at
//!    k = 25), with a per-word constant-digit skip so the high word of a
//!    barely-wide workload costs nothing;
//! 3. [`counter::count_sorted_runs`] collapses the sorted runs into
//!    occupancies ([`counter::PackedPermutationCounter`] /
//!    [`counter::PackedCountSummary`] — the summary stores one
//!    `(key, count)` pair per *distinct* permutation, never all n keys);
//! 4. [`encoding::PackedCodebook`] / [`encoding::FlatCodebook`] assign
//!    lexicographic codebook ids straight off the sorted distinct keys —
//!    no hash table anywhere.
//!
//! When the whole key buffer should not be held at once, [`shard`]
//! streams the same pipeline through bounded shards:
//! [`ShardedCounter`] buffers at most `shard_rows` keys, radix-sorts
//! each full shard with reused scratch, and merges it as sorted
//! run-lengths into a frontier holding one `(key, count)` entry per
//! distinct permutation seen so far.  Because merging sorted multiset
//! runs is associative, the finalized summary — and everything
//! downstream of it, including the float Huffman/entropy sums — is
//! bit-identical to the buffer-everything engine
//! ([`compute::collect_sharded_flat`] /
//! [`compute::collect_sharded_flat_parallel`]; `distperm count/survey
//! --shard-rows` on the command line).
//!
//! The hash path ([`counter::PermutationCounter`]) survives as the
//! reference oracle for arbitrary k and as the fallback for k > 25; the
//! sorted-run pipeline is pinned bit-identical to it (including
//! floating-point Huffman/entropy sums) by the survey equivalence suite.
//!
//! ## Everything else
//!
//! * [`Permutation`] — a compact, copyable permutation of up to
//!   [`MAX_K`] = 32 elements (the paper's experiments use k ≤ 12);
//! * [`compute::distance_permutation`] and the allocation-free
//!   [`compute::DistPermComputer`] for per-point scans, plus the batched
//!   flat-storage kernels [`compute::database_permutations_flat`] /
//!   [`compute::collect_counter_flat`] (site-transposed, block-resident,
//!   optionally parallel, bit-identical to the per-point path);
//! * [`lehmer`] — factorial-base ranking/unranking (k ≤ 33 fits in `u128`);
//! * [`permdist`] — Kendall tau, Spearman footrule and Spearman rho
//!   permutation distances (used by the `distperm`/iAESA index types for
//!   candidate ordering);
//! * [`encoding`] — bit-packed codes and the [`encoding::Codebook`]
//!   realising the paper's storage claim: once only N distinct permutations
//!   occur, each element needs only ⌈log₂ N⌉ bits;
//! * [`store`] — random-access physical layouts: [`store::RawPermStore`]
//!   (k·⌈log₂ k⌉ bits/element) and [`store::PackedPermStore`]
//!   (⌈log₂ N⌉ bits/element, the paper's strategy);
//! * [`huffman`] — entropy coding of permutation streams, implementing
//!   §4's "more sophisticated structure may be possible" remark;
//! * [`prefix`] — truncated permutations ([`prefix::PrefixPermutation`])
//!   and the induced top-ℓ footrule, the practical CFN index form;
//! * [`bits`] — the LSB-first bit I/O under all the packed layouts;
//! * [`fxhash`] — a local FxHash-style hasher for the generic
//!   (arbitrary-k, arbitrary-point) counting path.

#![forbid(unsafe_code)]

pub mod bits;
pub mod compute;
pub mod counter;
pub mod encoding;
pub mod fxhash;
pub mod huffman;
pub mod key;
pub mod lehmer;
pub mod perm;
pub mod permdist;
pub mod prefix;
pub mod radix;
pub mod shard;
pub mod store;

pub use compute::{
    collect_counter_flat, collect_counter_flat_parallel, collect_packed_flat,
    collect_packed_flat_parallel, collect_sharded_flat, collect_sharded_flat_parallel,
    database_permutations_flat, database_permutations_flat_parallel, distance_permutation,
    packed_keys_flat, DistPermComputer, PACKED_MAX_K, WIDE_MAX_K,
};
pub use counter::{
    count_sorted_runs, pack_perm, PackedCountSummary, PackedPermutationCounter, PermutationCounter,
};
pub use encoding::{Codebook, FlatCodebook, PackedCodebook};
pub use huffman::{HuffmanCode, HuffmanPermStore};
pub use key::PackedKey;
pub use perm::{Permutation, PermutationError, MAX_K};
pub use prefix::{prefix_footrule, PrefixPermutation};
pub use radix::RadixSorter;
pub use shard::ShardedCounter;
pub use store::{PackedPermStore, RawPermStore};
