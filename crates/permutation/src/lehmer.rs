//! Factorial-base (Lehmer code) ranking of permutations.
//!
//! `rank` maps a permutation of `0..k` to its index in lexicographic order
//! (`0 ..= k!-1`); `unrank` inverts it.  Since 34! < 2¹²⁸ < 35!, `u128`
//! ranks cover every permutation this crate can represent (k ≤ 32).
//!
//! The paper's storage discussion (§1, §4) contrasts ⌈log₂ k!⌉ bits for an
//! *unrestricted* permutation — exactly the size of this rank — with the
//! much smaller ⌈log₂ N_{d,p}(k)⌉ bits needed once the space's structure
//! limits the set of achievable permutations.

use crate::perm::{Permutation, MAX_K};

/// k! as u128.
///
/// # Panics
/// Panics if `k > 34` (35! overflows u128).
pub fn factorial(k: usize) -> u128 {
    assert!(k <= 34, "{k}! overflows u128");
    (1..=k as u128).product()
}

/// Lexicographic rank of `p` among all permutations of its length.
pub fn rank(p: &Permutation) -> u128 {
    let a = p.as_slice();
    let k = a.len();
    let mut r: u128 = 0;
    // used[e] marks elements already placed; smaller unused elements to the
    // right of position i contribute (count) * (k-1-i)!.
    let mut used = [false; MAX_K];
    for (i, &e) in a.iter().enumerate() {
        let smaller_unused = (0..e).filter(|&s| !used[s as usize]).count() as u128;
        r += smaller_unused * factorial(k - 1 - i);
        used[e as usize] = true;
    }
    r
}

/// The permutation of `0..k` with lexicographic rank `r`.
///
/// # Panics
/// Panics if `k > MAX_K` or `r >= k!`.
pub fn unrank(k: usize, mut r: u128) -> Permutation {
    assert!(k <= MAX_K, "k = {k} exceeds MAX_K = {MAX_K}");
    assert!(r < factorial(k), "rank {r} out of range for k = {k}");
    let mut remaining: Vec<u8> = (0..k as u8).collect();
    let mut items = Vec::with_capacity(k);
    for i in 0..k {
        let f = factorial(k - 1 - i);
        let idx = (r / f) as usize;
        r %= f;
        items.push(remaining.remove(idx));
    }
    Permutation::from_slice(&items).expect("unrank produces a valid permutation")
}

/// Number of bits needed to store an arbitrary rank for k sites:
/// ⌈log₂ k!⌉.  This is the paper's baseline permutation storage cost.
pub fn rank_bits(k: usize) -> u32 {
    let f = factorial(k);
    if f <= 1 {
        0
    } else {
        128 - (f - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorials() {
        assert_eq!(factorial(0), 1);
        assert_eq!(factorial(1), 1);
        assert_eq!(factorial(5), 120);
        assert_eq!(factorial(12), 479_001_600);
        // 34! is the largest supported.
        assert_eq!(factorial(34) / factorial(33), 34);
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn factorial_35_rejected() {
        let _ = factorial(35);
    }

    #[test]
    fn identity_has_rank_zero() {
        for k in 0..=8 {
            assert_eq!(rank(&Permutation::identity(k)), 0);
        }
    }

    #[test]
    fn reverse_has_maximal_rank() {
        let rev = Permutation::from_slice(&[4, 3, 2, 1, 0]).unwrap();
        assert_eq!(rank(&rev), factorial(5) - 1);
    }

    #[test]
    fn rank_matches_lexicographic_enumeration() {
        for k in 0..=6usize {
            for (expected, p) in Permutation::all(k).enumerate() {
                assert_eq!(rank(&p), expected as u128, "k={k} perm={p}");
            }
        }
    }

    #[test]
    fn unrank_inverts_rank() {
        for k in [0, 1, 2, 5, 7] {
            for r in 0..factorial(k).min(500) {
                let p = unrank(k, r);
                assert_eq!(rank(&p), r, "k={k} r={r}");
            }
        }
    }

    #[test]
    fn rank_unrank_large_k() {
        // Spot-check k = 20 with a scattered set of ranks.
        let f = factorial(20);
        for r in [0u128, 1, 12345, f / 2, f - 1] {
            assert_eq!(rank(&unrank(20, r)), r);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn unrank_out_of_range_rejected() {
        let _ = unrank(3, 6);
    }

    #[test]
    fn rank_bits_matches_log2_factorial() {
        assert_eq!(rank_bits(0), 0);
        assert_eq!(rank_bits(1), 0);
        assert_eq!(rank_bits(2), 1);
        assert_eq!(rank_bits(3), 3); // 6 values -> 3 bits
        assert_eq!(rank_bits(4), 5); // 24 -> 5 bits
        assert_eq!(rank_bits(12), 29); // 479001600 < 2^29
    }
}
