//! Bit-granular I/O shared by the storage formats.
//!
//! The storage experiments compare layouts whose record sizes are not
//! byte-aligned — ⌈log₂ k⌉ bits per permutation element, ⌈log₂ N⌉ bits per
//! codebook id, variable-length Huffman codes — so they all sit on one
//! LSB-first bit stream abstraction: [`BitWriter`] appends, [`BitReader`]
//! consumes sequentially, and [`read_bits_at`] gives random access into a
//! packed buffer at a bit offset.
//!
//! LSB-first means the first bit written lands in the least significant
//! bit of byte 0, matching the layout of `encoding::pack_ids`.

/// Appends values to a growing LSB-first bit buffer.
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    len_bits: usize,
}

impl BitWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// A writer pre-sized for `bits` total bits.
    pub fn with_capacity(bits: usize) -> Self {
        Self { buf: Vec::with_capacity(bits.div_ceil(8)), len_bits: 0 }
    }

    /// Appends the low `bits` bits of `value`, LSB first.
    ///
    /// # Panics
    /// Panics if `bits > 64` or `value` has bits set above `bits`.
    pub fn write(&mut self, value: u64, bits: u32) {
        assert!(bits <= 64, "cannot write {bits} bits at once");
        if bits < 64 {
            assert!(value >> bits == 0, "value {value:#x} does not fit in {bits} bits");
        }
        let mut remaining = bits as usize;
        let mut value = value;
        while remaining > 0 {
            let bit = self.len_bits % 8;
            if bit == 0 {
                self.buf.push(0);
            }
            let byte = self.len_bits / 8;
            let take = remaining.min(8 - bit);
            self.buf[byte] |= ((value & ((1u64 << take) - 1)) as u8) << bit;
            value >>= take;
            self.len_bits += take;
            remaining -= take;
        }
    }

    /// Appends a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        self.write(u64::from(bit), 1);
    }

    /// Total bits written so far.
    pub fn len_bits(&self) -> usize {
        self.len_bits
    }

    /// True iff nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.len_bits == 0
    }

    /// Consumes the writer, returning the packed bytes and the exact bit
    /// length (the final byte may be partially used; unused bits are zero).
    pub fn finish(self) -> (Vec<u8>, usize) {
        (self.buf, self.len_bits)
    }

    /// Borrows the bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }
}

/// Sequentially consumes an LSB-first bit buffer.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    data: &'a [u8],
    pos_bits: usize,
    len_bits: usize,
}

impl<'a> BitReader<'a> {
    /// Reads from `data`, which holds exactly `len_bits` valid bits.
    ///
    /// # Panics
    /// Panics if `len_bits` exceeds the buffer's capacity.
    pub fn new(data: &'a [u8], len_bits: usize) -> Self {
        assert!(len_bits <= data.len() * 8, "len_bits exceeds buffer");
        Self { data, pos_bits: 0, len_bits }
    }

    /// Reads `bits` bits, LSB first, or `None` if fewer remain.
    pub fn read(&mut self, bits: u32) -> Option<u64> {
        assert!(bits <= 64, "cannot read {bits} bits at once");
        if self.remaining() < bits as usize {
            return None;
        }
        let v = read_bits_at(self.data, self.pos_bits, bits);
        self.pos_bits += bits as usize;
        Some(v)
    }

    /// Reads a single bit.
    #[inline]
    pub fn read_bit(&mut self) -> Option<bool> {
        self.read(1).map(|b| b != 0)
    }

    /// Bits not yet consumed.
    pub fn remaining(&self) -> usize {
        self.len_bits - self.pos_bits
    }

    /// Current position in bits from the start.
    pub fn position(&self) -> usize {
        self.pos_bits
    }
}

/// Reads `bits` bits starting at bit offset `pos_bits` in `data`,
/// LSB first.
///
/// # Panics
/// Panics if the range extends past the buffer or `bits > 64`.
pub fn read_bits_at(data: &[u8], pos_bits: usize, bits: u32) -> u64 {
    assert!(bits <= 64);
    assert!(pos_bits + bits as usize <= data.len() * 8, "bit range out of bounds");
    let mut out: u64 = 0;
    let mut got = 0usize;
    let mut pos = pos_bits;
    while got < bits as usize {
        let byte = pos / 8;
        let bit = pos % 8;
        let take = (bits as usize - got).min(8 - bit);
        let chunk = (u64::from(data[byte]) >> bit) & ((1u64 << take) - 1);
        out |= chunk << got;
        got += take;
        pos += take;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_widths() {
        let mut w = BitWriter::new();
        w.write(0b101, 3);
        w.write(0xDEAD, 16);
        w.write(1, 1);
        w.write(0, 7);
        w.write(u64::MAX, 64);
        let (bytes, len) = w.finish();
        assert_eq!(len, 3 + 16 + 1 + 7 + 64);
        let mut r = BitReader::new(&bytes, len);
        assert_eq!(r.read(3), Some(0b101));
        assert_eq!(r.read(16), Some(0xDEAD));
        assert_eq!(r.read(1), Some(1));
        assert_eq!(r.read(7), Some(0));
        assert_eq!(r.read(64), Some(u64::MAX));
        assert_eq!(r.read(1), None);
    }

    #[test]
    fn zero_width_writes_are_noops() {
        let mut w = BitWriter::new();
        w.write(0, 0);
        assert!(w.is_empty());
        w.write(1, 1);
        w.write(0, 0);
        assert_eq!(w.len_bits(), 1);
        let (bytes, len) = w.finish();
        let mut r = BitReader::new(&bytes, len);
        assert_eq!(r.read(0), Some(0));
        assert_eq!(r.read_bit(), Some(true));
    }

    #[test]
    fn random_access_matches_sequential() {
        let mut w = BitWriter::new();
        let values: Vec<(u64, u32)> = (0..50u64).map(|i| (i * 37 % 61, 6)).collect();
        for &(v, b) in &values {
            w.write(v, b);
        }
        let (bytes, len) = w.finish();
        let mut r = BitReader::new(&bytes, len);
        for (i, &(v, b)) in values.iter().enumerate() {
            assert_eq!(r.read(b), Some(v));
            assert_eq!(read_bits_at(&bytes, i * 6, 6), v);
        }
    }

    #[test]
    fn reader_reports_remaining() {
        let mut w = BitWriter::new();
        w.write(0x3F, 6);
        let (bytes, len) = w.finish();
        let mut r = BitReader::new(&bytes, len);
        assert_eq!(r.remaining(), 6);
        r.read(2);
        assert_eq!(r.remaining(), 4);
        assert_eq!(r.position(), 2);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_value_rejected() {
        BitWriter::new().write(0b100, 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_random_access_rejected() {
        read_bits_at(&[0u8; 2], 10, 8);
    }

    #[test]
    fn partial_final_byte_is_zero_padded() {
        let mut w = BitWriter::new();
        w.write(0b1, 1);
        let (bytes, len) = w.finish();
        assert_eq!(len, 1);
        assert_eq!(bytes, vec![0b1]);
    }
}
