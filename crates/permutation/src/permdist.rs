//! Distances between permutations.
//!
//! The `distperm` and iAESA index types (Chávez–Figueroa–Navarro; Figueroa
//! et al.) order candidates by how similar their stored distance
//! permutation is to the query's.  The standard choices are implemented
//! here over 0-based [`Permutation`]s of equal length:
//!
//! * **Spearman footrule**  F(π,σ) = Σᵢ |π⁻¹(i) − σ⁻¹(i)|
//! * **Spearman rho (squared form)**  R(π,σ) = Σᵢ (π⁻¹(i) − σ⁻¹(i))²
//! * **Kendall tau**  number of discordant pairs.
//!
//! All three are genuine metrics on the symmetric group (rho in its
//! usual √-free form is, like squared Euclidean, only order-compatible; we
//! expose the sum of squares since index ordering is all the paper's
//! algorithms need).

use crate::perm::Permutation;

fn check_same_len(a: &Permutation, b: &Permutation) {
    assert_eq!(
        a.len(),
        b.len(),
        "permutation distance requires equal lengths ({} vs {})",
        a.len(),
        b.len()
    );
}

/// Spearman footrule: total displacement of each element between the two
/// rankings.  Maximum is ⌊k²/2⌋.
pub fn spearman_footrule(a: &Permutation, b: &Permutation) -> u64 {
    check_same_len(a, b);
    let ia = a.inverse();
    let ib = b.inverse();
    ia.as_slice().iter().zip(ib.as_slice()).map(|(&x, &y)| u64::from(x.abs_diff(y))).sum::<u64>()
}

/// Sum of squared rank displacements (the Spearman-rho statistic without
/// the normalisation).  Order-equivalent to Spearman's ρ.
pub fn spearman_rho_sq(a: &Permutation, b: &Permutation) -> u64 {
    check_same_len(a, b);
    let ia = a.inverse();
    let ib = b.inverse();
    ia.as_slice()
        .iter()
        .zip(ib.as_slice())
        .map(|(&x, &y)| {
            let d = u64::from(x.abs_diff(y));
            d * d
        })
        .sum::<u64>()
}

/// Kendall tau: number of pairs ordered differently by the two
/// permutations.  Maximum is C(k,2).
pub fn kendall_tau(a: &Permutation, b: &Permutation) -> u64 {
    check_same_len(a, b);
    // Relabel b through a's frame: sigma = positions of a's elements in b.
    // Kendall tau is then the inversion count of sigma; k <= 32 so the
    // quadratic count is faster than merge-sort bookkeeping.
    let ib = b.inverse();
    let sigma: Vec<u8> = a.as_slice().iter().map(|&e| ib.as_slice()[e as usize]).collect();
    let mut inversions = 0u64;
    for i in 0..sigma.len() {
        for j in (i + 1)..sigma.len() {
            inversions += u64::from(sigma[i] > sigma[j]);
        }
    }
    inversions
}

/// Cayley distance: minimum number of (arbitrary) transpositions turning
/// one permutation into the other, = k − #cycles(a⁻¹∘b).
///
/// Coarser than Kendall tau (which allows only *adjacent* swaps); useful
/// as a cheap diversity measure between stored permutations.
pub fn cayley(a: &Permutation, b: &Permutation) -> u64 {
    check_same_len(a, b);
    let k = a.len();
    // sigma = a^{-1} ∘ b maps rank-in-b to rank-in-a frames; its cycle
    // structure is what we need and is invariant under frame choice.
    let ia = a.inverse();
    let mut sigma = [0u8; crate::perm::MAX_K];
    for (i, &e) in b.as_slice().iter().enumerate() {
        sigma[i] = ia.as_slice()[e as usize];
    }
    let mut visited = [false; crate::perm::MAX_K];
    let mut cycles = 0u64;
    for start in 0..k {
        if visited[start] {
            continue;
        }
        cycles += 1;
        let mut at = start;
        while !visited[at] {
            visited[at] = true;
            at = sigma[at] as usize;
        }
    }
    k as u64 - cycles
}

/// Positional Hamming distance: number of ranks where the permutations
/// name different sites.
pub fn hamming(a: &Permutation, b: &Permutation) -> u64 {
    check_same_len(a, b);
    a.as_slice().iter().zip(b.as_slice()).filter(|(x, y)| x != y).count() as u64
}

/// Maximum possible footrule value for permutations of length k: ⌊k²/2⌋.
pub fn max_footrule(k: usize) -> u64 {
    (k * k / 2) as u64
}

/// Maximum possible Kendall tau for length k: C(k,2).
pub fn max_kendall(k: usize) -> u64 {
    (k * (k.saturating_sub(1)) / 2) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: &[u8]) -> Permutation {
        Permutation::from_slice(v).unwrap()
    }

    #[test]
    fn identical_permutations_have_zero_distance() {
        let a = p(&[2, 0, 1, 3]);
        assert_eq!(spearman_footrule(&a, &a), 0);
        assert_eq!(spearman_rho_sq(&a, &a), 0);
        assert_eq!(kendall_tau(&a, &a), 0);
    }

    #[test]
    fn reverse_attains_maxima() {
        for k in [2usize, 3, 4, 5, 8] {
            let id = Permutation::identity(k);
            let rev_items: Vec<u8> = (0..k as u8).rev().collect();
            let rev = p(&rev_items);
            assert_eq!(kendall_tau(&id, &rev), max_kendall(k), "kendall k={k}");
            assert_eq!(spearman_footrule(&id, &rev), max_footrule(k), "footrule k={k}");
        }
    }

    #[test]
    fn adjacent_transposition_counts() {
        let a = p(&[0, 1, 2, 3]);
        let b = p(&[0, 2, 1, 3]);
        assert_eq!(kendall_tau(&a, &b), 1);
        assert_eq!(spearman_footrule(&a, &b), 2);
        assert_eq!(spearman_rho_sq(&a, &b), 2);
    }

    #[test]
    fn footrule_hand_example() {
        // a = [1,2,0]: positions 1->0, 2->1, 0->2, so a^{-1} = [2,0,1].
        // b = identity: b^{-1} = [0,1,2]. Footrule = 2+1+1 = 4.
        let a = p(&[1, 2, 0]);
        let b = Permutation::identity(3);
        assert_eq!(spearman_footrule(&a, &b), 4);
        assert_eq!(spearman_rho_sq(&a, &b), 4 + 1 + 1);
        assert_eq!(kendall_tau(&a, &b), 2);
    }

    #[test]
    fn symmetry() {
        let perms: Vec<Permutation> = Permutation::all(4).collect();
        for a in &perms {
            for b in &perms {
                assert_eq!(spearman_footrule(a, b), spearman_footrule(b, a));
                assert_eq!(kendall_tau(a, b), kendall_tau(b, a));
                assert_eq!(spearman_rho_sq(a, b), spearman_rho_sq(b, a));
            }
        }
    }

    #[test]
    fn triangle_inequality_exhaustive_k4() {
        let perms: Vec<Permutation> = Permutation::all(4).collect();
        for a in &perms {
            for b in &perms {
                for c in &perms {
                    assert!(kendall_tau(a, b) <= kendall_tau(a, c) + kendall_tau(c, b));
                    assert!(
                        spearman_footrule(a, b)
                            <= spearman_footrule(a, c) + spearman_footrule(c, b)
                    );
                }
            }
        }
    }

    #[test]
    fn diaconis_graham_inequalities() {
        // Diaconis–Graham: K <= F <= 2K for all pairs.
        let perms: Vec<Permutation> = Permutation::all(5).collect();
        for a in perms.iter().step_by(7) {
            for b in perms.iter().step_by(11) {
                let k = kendall_tau(a, b);
                let f = spearman_footrule(a, b);
                assert!(k <= f && f <= 2 * k, "K={k} F={f} a={a} b={b}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn length_mismatch_panics() {
        let _ = spearman_footrule(&Permutation::identity(3), &Permutation::identity(4));
    }

    #[test]
    fn cayley_counts_transpositions() {
        let id = Permutation::identity(4);
        assert_eq!(cayley(&id, &id), 0);
        // One transposition away.
        assert_eq!(cayley(&id, &p(&[1, 0, 2, 3])), 1);
        // A 3-cycle needs two transpositions.
        assert_eq!(cayley(&id, &p(&[1, 2, 0, 3])), 2);
        // A 4-cycle needs three.
        assert_eq!(cayley(&id, &p(&[1, 2, 3, 0])), 3);
    }

    #[test]
    fn cayley_is_a_metric_and_below_kendall() {
        let perms: Vec<Permutation> = Permutation::all(4).collect();
        for a in &perms {
            for b in &perms {
                let c = cayley(a, b);
                assert_eq!(c, cayley(b, a));
                assert_eq!(c == 0, a == b);
                assert!(c <= kendall_tau(a, b), "cayley exceeds kendall");
                for mid in perms.iter().step_by(5) {
                    assert!(c <= cayley(a, mid) + cayley(mid, b));
                }
            }
        }
    }

    #[test]
    fn hamming_basic_properties() {
        let id = Permutation::identity(5);
        assert_eq!(hamming(&id, &id), 0);
        assert_eq!(hamming(&id, &p(&[1, 0, 2, 3, 4])), 2);
        // No two permutations differ in exactly one position.
        for a in Permutation::all(4) {
            for b in Permutation::all(4) {
                assert_ne!(hamming(&a, &b), 1);
            }
        }
    }
}
