//! Compact storage of distance permutations.
//!
//! The paper's storage argument (§1, §4): an unrestricted permutation of k
//! sites needs Θ(k log k) bits, but when the space limits the achievable
//! set to N permutations, "the bound can be achieved simply by storing the
//! full permutations in a separate table and storing the index numbers into
//! that table alongside the points".  [`Codebook`] is that table; in
//! d-dimensional Euclidean space its ids take ⌈log₂ N_{d,2}(k)⌉ = Θ(d log k)
//! bits each.
//!
//! [`pack`]/[`unpack`] provide the naive alternative (⌈log₂ k⌉ bits per
//! element) so the two strategies can be compared byte-for-byte in the
//! storage experiment (E13).
//!
//! Three codebook shapes, one id assignment where it matters:
//!
//! * [`Codebook`] — hash-interned, ids in first-seen order; the general
//!   incremental form (any insertion stream, any k).
//! * [`FlatCodebook`] — a sorted array, ids = lexicographic ranks,
//!   lookup by binary search; what a codebook built by interning a
//!   *sorted* permutation run comes out as, with no hash table.
//! * [`PackedCodebook`] — [`FlatCodebook`] for the packed counting
//!   pipeline at either key width (`u64` for k ≤ 12, `u128` for
//!   k ≤ 25): built straight off a [`PackedCountSummary`]'s sorted
//!   distinct keys — the lexicographic key layout makes the sorted key
//!   rank *be* the codebook id, so no permutation is ever decoded.

use crate::counter::{count_sorted_runs, decode_packed, pack_perm, PackedCountSummary};
// dplint: allow(hot-path-hash, reason = generic-path interner for arbitrary k; the
// flat hot path uses FlatCodebook/PackedCodebook which never touch a hash table)
use crate::fxhash::FxHashMap;
use crate::key::PackedKey;
use crate::perm::{Permutation, PermutationError};

/// Bits needed per element for naive positional packing: ⌈log₂ k⌉ (k ≥ 2).
pub fn element_bits(k: usize) -> u32 {
    match k {
        0 | 1 => 0,
        _ => usize::BITS - (k - 1).leading_zeros(),
    }
}

/// Packs a permutation into a little-endian bit string of
/// `k * element_bits(k)` bits.
pub fn pack(p: &Permutation) -> Vec<u8> {
    let k = p.len();
    let bits = element_bits(k) as usize;
    let total_bits = k * bits;
    let mut out = vec![0u8; total_bits.div_ceil(8)];
    for (i, &e) in p.as_slice().iter().enumerate() {
        let mut value = e as usize;
        let mut pos = i * bits;
        let mut remaining = bits;
        while remaining > 0 {
            let byte = pos / 8;
            let bit = pos % 8;
            let take = remaining.min(8 - bit);
            out[byte] |= ((value & ((1 << take) - 1)) as u8) << bit;
            value >>= take;
            pos += take;
            remaining -= take;
        }
    }
    out
}

/// Unpacks a permutation of length `k` previously produced by [`pack`].
pub fn unpack(bytes: &[u8], k: usize) -> Result<Permutation, PermutationError> {
    let bits = element_bits(k) as usize;
    let mut items = Vec::with_capacity(k);
    for i in 0..k {
        let mut value = 0usize;
        let mut pos = i * bits;
        let mut got = 0;
        while got < bits {
            let byte = pos / 8;
            let bit = pos % 8;
            let take = (bits - got).min(8 - bit);
            let chunk = (bytes.get(byte).copied().unwrap_or(0) >> bit) & ((1u16 << take) - 1) as u8;
            value |= (chunk as usize) << got;
            got += take;
            pos += take;
        }
        items.push(value as u8);
    }
    if k == 1 {
        // element_bits(1) = 0, so the single element is implicit.
        return Permutation::from_slice(&[0]);
    }
    Permutation::from_slice(&items)
}

/// A permutation → small-integer-id table (the paper's storage strategy).
///
/// Ids are assigned in first-seen order; [`Codebook::id_bits`] is the
/// per-element storage cost once the codebook is built.  Build one from a
/// database scan with `collect()` (it implements `FromIterator`).
#[derive(Debug, Clone, Default)]
pub struct Codebook {
    // dplint: allow(hot-path-hash, reason = legacy generic interner kept for
    // arbitrary-k correctness checks; flat kernels intern via radix-built tables)
    to_id: FxHashMap<Permutation, u32>,
    from_id: Vec<Permutation>,
}

impl Codebook {
    /// An empty codebook.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id for `p`, inserting it if new.
    pub fn intern(&mut self, p: Permutation) -> u32 {
        if let Some(&id) = self.to_id.get(&p) {
            return id;
        }
        let id = self.from_id.len() as u32;
        self.to_id.insert(p, id);
        self.from_id.push(p);
        id
    }

    /// Looks up the id of `p` without inserting.
    pub fn id_of(&self, p: &Permutation) -> Option<u32> {
        self.to_id.get(p).copied()
    }

    /// The permutation with a given id.
    pub fn permutation(&self, id: u32) -> Option<&Permutation> {
        self.from_id.get(id as usize)
    }

    /// Number of distinct permutations interned.
    pub fn len(&self) -> usize {
        self.from_id.len()
    }

    /// True iff no permutation has been interned.
    pub fn is_empty(&self) -> bool {
        self.from_id.is_empty()
    }

    /// Bits per element needed to store an id: ⌈log₂ len⌉.
    pub fn id_bits(&self) -> u32 {
        element_bits(self.len())
    }

    /// Encodes a database of permutations as ids.
    ///
    /// # Panics
    /// Panics if any permutation was not interned.
    pub fn encode_all(&self, perms: &[Permutation]) -> Vec<u32> {
        perms.iter().map(|p| self.id_of(p).expect("permutation missing from codebook")).collect()
    }

    /// Decodes ids back to permutations.
    ///
    /// # Panics
    /// Panics if any id is out of range.
    pub fn decode_all(&self, ids: &[u32]) -> Vec<Permutation> {
        ids.iter().map(|&id| *self.permutation(id).expect("id out of range")).collect()
    }
}

impl FromIterator<Permutation> for Codebook {
    fn from_iter<I: IntoIterator<Item = Permutation>>(perms: I) -> Self {
        let mut cb = Self::new();
        for p in perms {
            cb.intern(p);
        }
        cb
    }
}

/// A flat (sorted-array) permutation → id table — the hash-free codebook.
///
/// Ids are **lexicographic ranks**: building one is a sort + run scan,
/// and the result is id-for-id identical to interning
/// [`crate::counter::PermutationCounter::sorted_permutations`] into a
/// [`Codebook`] in order.  Lookup is a binary search over the sorted
/// table (no hash table, no per-entry heap box), decoding is an array
/// index.
#[derive(Debug, Clone, Default)]
pub struct FlatCodebook {
    perms: Vec<Permutation>,
}

impl FlatCodebook {
    /// Builds the codebook from an arbitrary permutation stream
    /// (sorts a copy, collapses runs).
    pub fn from_permutations(perms: &[Permutation]) -> Self {
        Self::from_permutations_with_counts(perms).0
    }

    /// [`Self::from_permutations`], also returning the occurrence count
    /// of each distinct permutation **indexed by id** — the frequency
    /// table entropy/Huffman analyses want, produced by the same single
    /// sorted-run scan ([`count_sorted_runs`]).
    pub fn from_permutations_with_counts(perms: &[Permutation]) -> (Self, Vec<u64>) {
        let mut sorted = perms.to_vec();
        sorted.sort_unstable();
        let counts = count_sorted_runs(&sorted);
        let mut uniq = Vec::with_capacity(counts.len());
        let mut pos = 0usize;
        for &c in &counts {
            uniq.push(sorted[pos]);
            pos += c as usize;
        }
        (Self { perms: uniq }, counts)
    }

    /// Wraps an already strictly-sorted run of distinct permutations.
    ///
    /// # Panics
    /// Panics if the input is not strictly ascending.
    pub fn from_sorted_unique(perms: Vec<Permutation>) -> Self {
        assert!(
            perms.windows(2).all(|w| w[0] < w[1]),
            "FlatCodebook input must be strictly sorted"
        );
        Self { perms }
    }

    /// The id of `p`: its lexicographic rank among the distinct
    /// permutations, or `None` if absent.
    pub fn id_of(&self, p: &Permutation) -> Option<u32> {
        self.perms.binary_search(p).ok().map(|i| i as u32)
    }

    /// The permutation with a given id.
    pub fn permutation(&self, id: u32) -> Option<&Permutation> {
        self.perms.get(id as usize)
    }

    /// Number of distinct permutations.
    pub fn len(&self) -> usize {
        self.perms.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.perms.is_empty()
    }

    /// Bits per element needed to store an id: ⌈log₂ len⌉.
    pub fn id_bits(&self) -> u32 {
        element_bits(self.len())
    }

    /// The distinct permutations in id (= lexicographic) order.
    pub fn as_slice(&self) -> &[Permutation] {
        &self.perms
    }

    /// Encodes a database of permutations as ids.
    ///
    /// # Panics
    /// Panics if any permutation is absent.
    pub fn encode_all(&self, perms: &[Permutation]) -> Vec<u32> {
        perms.iter().map(|p| self.id_of(p).expect("permutation missing from codebook")).collect()
    }

    /// Decodes ids back to permutations.
    ///
    /// # Panics
    /// Panics if any id is out of range.
    pub fn decode_all(&self, ids: &[u32]) -> Vec<Permutation> {
        ids.iter().map(|&id| *self.permutation(id).expect("id out of range")).collect()
    }
}

impl FromIterator<Permutation> for FlatCodebook {
    fn from_iter<I: IntoIterator<Item = Permutation>>(perms: I) -> Self {
        let collected: Vec<Permutation> = perms.into_iter().collect();
        Self::from_permutations(&collected)
    }
}

/// The flat codebook of the packed counting pipeline: built straight
/// off a [`PackedCountSummary`]'s sorted distinct keys with **no hash
/// interning, no permutation decode, and no extra sort** — the
/// [`pack_perm`] lexicographic layout makes the summary's ascending
/// key order the id order.  Generic over the key width like the
/// summary it is built from.
///
/// Ids are the same lexicographic ranks [`FlatCodebook`] assigns, so
/// frequency tables indexed by either agree element for element (the
/// survey equivalence suite pins this across engines).
#[derive(Debug, Clone)]
pub struct PackedCodebook<K: PackedKey = u64> {
    k: usize,
    /// Distinct packed keys ascending; the index of a key *is* its
    /// codebook id (lexicographic rank), serving both the
    /// binary-search lookup side and the decode side.
    keys: Vec<K>,
}

impl<K: PackedKey> PackedCodebook<K> {
    /// Builds the codebook from a finalized counting summary.
    pub fn from_summary(summary: &PackedCountSummary<K>) -> Self {
        Self { k: summary.k(), keys: summary.distinct_keys().collect() }
    }

    /// Permutation length k.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The id of a packed key: its rank in the sorted distinct keys
    /// (binary search) — the lexicographic layout makes rank and id the
    /// same number.
    pub fn id_of_key(&self, key: K) -> Option<u32> {
        self.keys.binary_search(&key).ok().map(|rank| rank as u32)
    }

    /// The id of a permutation value (packs, then [`Self::id_of_key`]).
    /// `None` for absent permutations or a length other than k.
    pub fn id_of(&self, p: &Permutation) -> Option<u32> {
        if p.len() != self.k {
            return None;
        }
        self.id_of_key(pack_perm(p))
    }

    /// The permutation with a given id, decoded.
    pub fn permutation(&self, id: u32) -> Option<Permutation> {
        self.keys.get(id as usize).map(|&key| decode_packed(key, self.k))
    }

    /// Number of distinct permutations.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Bits per element needed to store an id: ⌈log₂ len⌉.
    pub fn id_bits(&self) -> u32 {
        element_bits(self.len())
    }

    /// Expands into a [`FlatCodebook`] (identical ids), decoding each
    /// distinct permutation once.
    pub fn to_flat(&self) -> FlatCodebook {
        FlatCodebook::from_sorted_unique(
            self.keys.iter().map(|&key| decode_packed(key, self.k)).collect(),
        )
    }
}

/// Packs a stream of codebook ids into a little-endian bit string of
/// `bits` bits per id — the physical layout of the paper's
/// ⌈log₂ N⌉-bits-per-element index.
///
/// # Panics
/// Panics if any id needs more than `bits` bits, or `bits > 32`.
pub fn pack_ids(ids: &[u32], bits: u32) -> Vec<u8> {
    assert!(bits <= 32);
    let mask: u64 = if bits == 0 { 0 } else { (1u64 << bits) - 1 };
    let mut out = vec![0u8; (ids.len() * bits as usize).div_ceil(8)];
    for (i, &id) in ids.iter().enumerate() {
        assert!(u64::from(id) <= mask, "id {id} does not fit in {bits} bits");
        let mut value = u64::from(id);
        let mut pos = i * bits as usize;
        let mut remaining = bits as usize;
        while remaining > 0 {
            let byte = pos / 8;
            let bit = pos % 8;
            let take = remaining.min(8 - bit);
            out[byte] |= ((value & ((1 << take) - 1)) as u8) << bit;
            value >>= take;
            pos += take;
            remaining -= take;
        }
    }
    out
}

/// Unpacks `count` ids of `bits` bits each from a [`pack_ids`] stream.
pub fn unpack_ids(bytes: &[u8], bits: u32, count: usize) -> Vec<u32> {
    assert!(bits <= 32);
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let mut value = 0u64;
        let mut pos = i * bits as usize;
        let mut got = 0usize;
        while got < bits as usize {
            let byte = pos / 8;
            let bit = pos % 8;
            let take = (bits as usize - got).min(8 - bit);
            let chunk = (bytes.get(byte).copied().unwrap_or(0) >> bit) & ((1u16 << take) - 1) as u8;
            value |= u64::from(chunk) << got;
            got += take;
            pos += take;
        }
        out.push(value as u32);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_bits_values() {
        assert_eq!(element_bits(0), 0);
        assert_eq!(element_bits(1), 0);
        assert_eq!(element_bits(2), 1);
        assert_eq!(element_bits(3), 2);
        assert_eq!(element_bits(4), 2);
        assert_eq!(element_bits(5), 3);
        assert_eq!(element_bits(8), 3);
        assert_eq!(element_bits(9), 4);
        assert_eq!(element_bits(32), 5);
    }

    #[test]
    fn pack_unpack_roundtrip_all_k5() {
        for p in Permutation::all(5) {
            let bytes = pack(&p);
            assert_eq!(bytes.len(), (5 * 3usize).div_ceil(8));
            assert_eq!(unpack(&bytes, 5).unwrap(), p);
        }
    }

    #[test]
    fn pack_unpack_roundtrip_various_k() {
        for k in [1usize, 2, 3, 4, 7, 8, 12, 16] {
            let p = Permutation::identity(k);
            assert_eq!(unpack(&pack(&p), k).unwrap(), p, "identity k={k}");
            let rev: Vec<u8> = (0..k as u8).rev().collect();
            let r = Permutation::from_slice(&rev).unwrap();
            assert_eq!(unpack(&pack(&r), k).unwrap(), r, "reverse k={k}");
        }
    }

    #[test]
    fn packed_size_matches_formula() {
        // k = 12: 12 * 4 bits = 48 bits = 6 bytes (vs 12 bytes naive).
        let p = Permutation::identity(12);
        assert_eq!(pack(&p).len(), 6);
    }

    #[test]
    fn codebook_assigns_first_seen_ids() {
        let a = Permutation::identity(3);
        let b = Permutation::from_slice(&[2, 1, 0]).unwrap();
        let mut cb = Codebook::new();
        assert_eq!(cb.intern(a), 0);
        assert_eq!(cb.intern(b), 1);
        assert_eq!(cb.intern(a), 0);
        assert_eq!(cb.len(), 2);
        assert_eq!(cb.permutation(1), Some(&b));
        assert_eq!(cb.id_of(&a), Some(0));
    }

    #[test]
    fn codebook_id_bits_tracks_size() {
        let mut cb = Codebook::new();
        assert_eq!(cb.id_bits(), 0);
        for (i, p) in Permutation::all(4).enumerate() {
            cb.intern(p);
            let expected = element_bits(i + 1);
            assert_eq!(cb.id_bits(), expected);
        }
        assert_eq!(cb.len(), 24);
        assert_eq!(cb.id_bits(), 5);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let perms: Vec<Permutation> = Permutation::all(4).step_by(3).collect();
        let cb: Codebook = perms.iter().copied().collect();
        let ids = cb.encode_all(&perms);
        assert_eq!(cb.decode_all(&ids), perms);
    }

    #[test]
    #[should_panic(expected = "missing from codebook")]
    fn encode_unknown_panics() {
        let cb = Codebook::new();
        let _ = cb.encode_all(&[Permutation::identity(2)]);
    }

    #[test]
    fn pack_ids_roundtrip_all_widths() {
        for bits in 1..=17u32 {
            let max = (1u64 << bits) - 1;
            let ids: Vec<u32> = (0..100u64).map(|i| ((i * 37) % (max + 1)) as u32).collect();
            let stream = pack_ids(&ids, bits);
            assert_eq!(stream.len(), (100 * bits as usize).div_ceil(8), "bits={bits}");
            assert_eq!(unpack_ids(&stream, bits, 100), ids, "bits={bits}");
        }
    }

    #[test]
    fn pack_ids_zero_bits_for_singleton_codebook() {
        // A database where every element has the same permutation needs 0
        // bits per element.
        let ids = vec![0u32; 50];
        let stream = pack_ids(&ids, 0);
        assert!(stream.is_empty());
        assert_eq!(unpack_ids(&stream, 0, 50), ids);
    }

    #[test]
    fn packed_stream_matches_storage_formula() {
        // 10,000 elements at 11 bits/id = 13,750 bytes.
        let ids = vec![1234u32; 10_000];
        assert_eq!(pack_ids(&ids, 11).len(), 13_750);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_id_rejected() {
        let _ = pack_ids(&[8], 3);
    }

    fn sample_perms() -> Vec<Permutation> {
        // An irregular multiset of k = 4 permutations.
        let base: Vec<Permutation> =
            [[0u8, 1, 2, 3], [3, 0, 1, 2], [1, 0, 2, 3], [3, 2, 1, 0], [0, 2, 1, 3]]
                .iter()
                .map(|s| Permutation::from_slice(s).unwrap())
                .collect();
        (0..40).map(|i| base[(i * 7) % base.len()]).collect()
    }

    #[test]
    fn flat_codebook_matches_hash_codebook_on_sorted_interning() {
        let perms = sample_perms();
        let flat = FlatCodebook::from_permutations(&perms);
        let mut sorted = perms.clone();
        sorted.sort_unstable();
        sorted.dedup();
        let hash: Codebook = sorted.into_iter().collect();
        assert_eq!(flat.len(), hash.len());
        for p in &perms {
            assert_eq!(flat.id_of(p), hash.id_of(p), "{p}");
        }
        for id in 0..flat.len() as u32 {
            assert_eq!(flat.permutation(id), hash.permutation(id));
        }
        assert_eq!(flat.id_bits(), hash.id_bits());
        assert_eq!(flat.id_of(&Permutation::identity(4)), Some(0));
        assert!(flat.id_of(&Permutation::identity(5)).is_none());
    }

    #[test]
    fn flat_codebook_counts_are_the_frequency_table() {
        let perms = sample_perms();
        let (flat, counts) = FlatCodebook::from_permutations_with_counts(&perms);
        assert_eq!(counts.len(), flat.len());
        assert_eq!(counts.iter().sum::<u64>(), perms.len() as u64);
        for (id, &c) in counts.iter().enumerate() {
            let p = flat.permutation(id as u32).unwrap();
            let direct = perms.iter().filter(|q| *q == p).count() as u64;
            assert_eq!(c, direct, "id {id}");
        }
    }

    #[test]
    fn flat_codebook_roundtrips_and_collects() {
        let perms = sample_perms();
        let flat: FlatCodebook = perms.iter().copied().collect();
        let ids = flat.encode_all(&perms);
        assert_eq!(flat.decode_all(&ids), perms);
        assert!(FlatCodebook::default().is_empty());
    }

    #[test]
    #[should_panic(expected = "strictly sorted")]
    fn flat_codebook_rejects_unsorted_input() {
        let _ = FlatCodebook::from_sorted_unique(vec![
            Permutation::from_slice(&[1, 0]).unwrap(),
            Permutation::identity(2),
        ]);
    }

    #[test]
    fn packed_codebook_assigns_flat_codebook_ids() {
        use crate::counter::PackedPermutationCounter;
        let perms = sample_perms();
        let mut counter = PackedPermutationCounter::<u64>::new(4);
        for p in &perms {
            counter.insert(p);
        }
        let summary = counter.finalize();
        let packed = PackedCodebook::from_summary(&summary);
        let flat = FlatCodebook::from_permutations(&perms);
        assert_eq!(packed.len(), flat.len());
        assert_eq!(packed.id_bits(), flat.id_bits());
        for p in &perms {
            assert_eq!(packed.id_of(p), flat.id_of(p), "{p}");
        }
        for id in 0..packed.len() as u32 {
            assert_eq!(packed.permutation(id).as_ref(), flat.permutation(id));
        }
        // Absent key / wrong length.
        assert!(packed.id_of(&Permutation::from_slice(&[2, 3, 0, 1]).unwrap()).is_none());
        assert!(packed.id_of(&Permutation::identity(3)).is_none());
        // Full expansion agrees.
        assert_eq!(packed.to_flat().as_slice(), flat.as_slice());
    }

    #[test]
    fn wide_packed_codebook_assigns_flat_codebook_ids() {
        use crate::counter::PackedPermutationCounter;
        // k = 15 permutations only fit the u128 key width.
        let k = 15usize;
        let mut base: Vec<u8> = (0..k as u8).collect();
        let mut perms = Vec::new();
        for round in 0..120usize {
            base.rotate_left(1 + round % 5);
            if round % 2 == 0 {
                base.swap(3, 11);
            }
            perms.push(Permutation::from_slice(&base).unwrap());
        }
        let mut counter: PackedPermutationCounter<u128> = PackedPermutationCounter::new(k);
        for p in &perms {
            counter.insert(p);
        }
        let packed = PackedCodebook::from_summary(&counter.finalize());
        let flat = FlatCodebook::from_permutations(&perms);
        assert_eq!(packed.len(), flat.len());
        for p in &perms {
            assert_eq!(packed.id_of(p), flat.id_of(p), "{p}");
        }
        for id in 0..packed.len() as u32 {
            assert_eq!(packed.permutation(id).as_ref(), flat.permutation(id));
        }
        assert_eq!(packed.to_flat().as_slice(), flat.as_slice());
    }

    #[test]
    fn end_to_end_codebook_pipeline() {
        // permutations -> codebook -> ids -> packed bits -> back.
        let perms: Vec<Permutation> = Permutation::all(4).collect();
        let mut cb = Codebook::new();
        let ids: Vec<u32> = perms.iter().map(|&p| cb.intern(p)).collect();
        let stream = pack_ids(&ids, cb.id_bits());
        let restored = cb.decode_all(&unpack_ids(&stream, cb.id_bits(), ids.len()));
        assert_eq!(restored, perms);
    }
}
