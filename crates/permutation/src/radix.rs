//! LSD radix sort specialized for packed permutation keys.
//!
//! The packed counting pipeline ([`crate::counter::PackedPermutationCounter`])
//! reduces "count distinct distance permutations" to "sort a key buffer
//! and scan runs".  After the strip-mined distance kernels and the tiled
//! ranking, that sort is a large slice of the 100k-point count — and the
//! keys are far from arbitrary machine words: a permutation of `k` sites
//! occupies only the low `5·k` bits of a [`PackedKey`] (5 bits per
//! position, `u64` for k ≤ 12 and `u128` for k ≤ 25), so a comparison
//! sort's `n log n` branchy compares can be replaced by at most
//! `⌈5k/12⌉` branch-free counting-sort passes.
//!
//! [`RadixSorter`] is that sort, generic over the key width:
//!
//! * **LSD 12-bit passes** — 4096-bucket counting sort per digit, least
//!   significant first, ping-ponging between the input and a scratch
//!   buffer.  Equal keys need no tie-break (they are *identical* words),
//!   so the result is exactly what `sort_unstable` produces.  Twelve bits
//!   is the sweet spot for this workload: k = 12 keys sort in 5 passes
//!   (vs 8 byte passes), k = 25 `u128` keys in 11, and the live histogram
//!   set stays L1/L2-resident.  Digit extraction narrows through
//!   [`PackedKey::low64`] after the shift, so the inner loops do 64-bit
//!   arithmetic at both widths.
//! * **MSD hybrid for wide keys** — above the u64 key width a single
//!   top-digit scatter partitions the buffer into 4096 ascending ranges
//!   and each range finishes with a cache-hot comparison sort, touching
//!   every key ~twice where seven-plus LSD passes (k = 16 and up) would
//!   stream the whole buffer once per digit.  Bucket order times bucket
//!   content equals `sort_unstable` exactly, so the contract is
//!   unchanged; pair sorts keep the stable LSD path at every width.
//! * **Per-word constant-digit skip** — all histograms are built in one
//!   pre-pass; any digit on which every key agrees (the high digits for
//!   small `k` — including the entire high word of a barely-wide `u128`
//!   workload — or any constant digit of a skewed distribution) costs
//!   nothing.  The `significant_bits` bound skips the constant high
//!   digits without even histogramming them.
//! * **Sorted-input fast path** — an `O(n)` check returns immediately on
//!   already-sorted input, which is how the parallel collectors hand over
//!   pre-merged sorted runs for free.
//! * **Reusable scratch** — the sorter owns its scratch and histogram
//!   buffers, so repeated finalizes (the per-k survey loop) never
//!   reallocate.  [`crate::shard::ShardedCounter`] leans on the same
//!   property: one sorter sorts every shard of a streaming count, so
//!   the scratch allocation is paid once per counter, not per shard.
//!
//! The property suite (`tests/radix_properties.rs`) pins
//! `radix == sort_unstable` over adversarial distributions at both
//! widths; the `counting_phases` bench records the phase-level speedup.

use crate::key::PackedKey;

/// Bits consumed per counting-sort pass.
const DIGIT_BITS: u32 = 12;
/// Buckets per pass: 4096 `u32` counters = 16 KiB per digit.
const BUCKETS: usize = 1 << DIGIT_BITS;
/// Below this length a comparison sort beats the histogram pre-pass.
const SMALL_SORT: usize = 512;
/// Keys wider than this route through the MSD hybrid instead of LSD
/// passes: one top-digit scatter plus per-bucket comparison sorts
/// touches each key ~twice, where six-plus LSD passes would touch it
/// that many times.  Set just above the u64 key width so the narrow
/// (k ≤ 12) pipeline keeps its measured LSD profile exactly.
const MSD_MIN_BITS: u32 = 64;

/// Reusable scratch state for [`radix sorting`](self) packed keys and
/// key-tagged pairs.
///
/// Generic over the key width (`u64` by default, `u128` for the wide
/// pipeline); payloads stay `u64` at both widths.  Sorting through a
/// sorter amortises the scratch allocation across calls; a fresh sorter
/// per call is still faster than `sort_unstable` on large inputs, it
/// just pays the allocations once.
#[derive(Debug, Clone, Default)]
pub struct RadixSorter<K: PackedKey = u64> {
    keys: Vec<K>,
    pairs: Vec<(K, u64)>,
    hist: Vec<u32>,
}

impl<K: PackedKey> RadixSorter<K> {
    /// A sorter with empty scratch buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sorts `keys` ascending — output identical to `sort_unstable`.
    ///
    /// `significant_bits` bounds the highest set bit across all keys
    /// (pass `K::BITS` when unknown); digits above the bound are never
    /// histogrammed or scattered.  Packed permutation keys of length `k`
    /// use [`PackedKey::key_bits`]`(k)` significant bits.
    ///
    /// # Panics
    /// Panics in debug builds if a key exceeds the declared bound.
    pub fn sort_keys(&mut self, keys: &mut [K], significant_bits: u32) {
        debug_assert!(bound_holds(keys.iter().copied(), significant_bits));
        if keys.len() < SMALL_SORT {
            keys.sort_unstable();
            return;
        }
        if keys.windows(2).all(|w| w[0] <= w[1]) {
            return;
        }
        // Grow-only: the scatter overwrites every slot it reads, so the
        // existing contents (and any zero-fill) are irrelevant.
        if self.keys.len() < keys.len() {
            self.keys.resize(keys.len(), K::ZERO);
        }
        let scratch = &mut self.keys[..keys.len()];
        if significant_bits.min(K::BITS) > MSD_MIN_BITS {
            msd_hybrid(keys, scratch, &mut self.hist, significant_bits.min(K::BITS));
        } else {
            lsd_passes(keys, scratch, &mut self.hist, significant_bits, |&k| k);
        }
    }

    /// Sorts `(key, value)` pairs ascending by `key` — identical to
    /// `sort_unstable` whenever the keys are distinct (equal keys keep
    /// their input order instead of comparing values).
    ///
    /// `significant_bits` bounds the keys as in [`Self::sort_keys`].
    pub fn sort_pairs(&mut self, pairs: &mut [(K, u64)], significant_bits: u32) {
        debug_assert!(bound_holds(pairs.iter().map(|p| p.0), significant_bits));
        if pairs.len() < SMALL_SORT {
            // Stable, like the radix passes — the order contract must
            // not depend on which side of the size cutoff a call lands.
            pairs.sort_by_key(|p| p.0);
            return;
        }
        if pairs.windows(2).all(|w| w[0].0 <= w[1].0) {
            return;
        }
        if self.pairs.len() < pairs.len() {
            self.pairs.resize(pairs.len(), (K::ZERO, 0));
        }
        let scratch = &mut self.pairs[..pairs.len()];
        lsd_passes(pairs, scratch, &mut self.hist, significant_bits, |p| p.0);
    }
}

/// MSD top-digit hybrid for wide keys: one 4096-way counting-sort pass
/// on the most significant [`DIGIT_BITS`] of the significant range,
/// then `sort_unstable` inside each bucket.  Buckets partition the key
/// space into disjoint ascending ranges, so fully sorting each bucket
/// yields exactly `sort_unstable`'s output (plain keys carry no payload
/// — no stability contract).  For 100k wide permutation keys the
/// buckets average a few dozen contiguous cache-hot elements, so the
/// whole sort touches each key about twice instead of once per LSD
/// digit (seven passes at k = 16, eleven at k = 25).
fn msd_hybrid<K: PackedKey>(keys: &mut [K], scratch: &mut [K], hist: &mut Vec<u32>, bits: u32) {
    debug_assert!(bits > DIGIT_BITS);
    let n = keys.len();
    debug_assert_eq!(n, scratch.len());
    assert!(n <= u32::MAX as usize, "radix histogram counts are u32");
    let shift = bits - DIGIT_BITS;
    let mask = (BUCKETS - 1) as u64;
    hist.clear();
    hist.resize(BUCKETS, 0);
    for &k in keys.iter() {
        hist[((k >> shift).low64() & mask) as usize] += 1;
    }
    // Inclusive prefix sum, then a reverse scatter with pre-decrement:
    // afterwards each histogram slot holds its bucket's START offset,
    // which the sweep below uses as the bucket boundaries.
    let mut sum = 0u32;
    for c in hist.iter_mut() {
        sum += *c;
        *c = sum;
    }
    for &k in keys.iter().rev() {
        let digit = ((k >> shift).low64() & mask) as usize;
        hist[digit] -= 1;
        scratch[hist[digit] as usize] = k;
    }
    keys.copy_from_slice(scratch);
    let mut start = 0usize;
    for digit in 0..BUCKETS {
        let end = if digit + 1 < BUCKETS { hist[digit + 1] as usize } else { n };
        keys[start..end].sort_unstable();
        start = end;
    }
}

fn bound_holds<K: PackedKey>(keys: impl IntoIterator<Item = K>, significant_bits: u32) -> bool {
    if significant_bits >= K::BITS {
        return true;
    }
    keys.into_iter().all(|k| (k >> significant_bits) == K::ZERO)
}

/// The LSD engine: histogram every candidate digit in one pre-pass, then
/// run one stable counting-sort pass per non-constant digit, ping-ponging
/// `data` and `scratch`.  `scratch` must be the same length as `data`.
/// Stability makes equal-key pairs keep input order.
fn lsd_passes<T: Copy, K: PackedKey>(
    data: &mut [T],
    scratch: &mut [T],
    hist: &mut Vec<u32>,
    significant_bits: u32,
    key: impl Fn(&T) -> K,
) {
    let n = data.len();
    debug_assert_eq!(n, scratch.len());
    assert!(n <= u32::MAX as usize, "radix histogram counts are u32");
    let digits = (significant_bits.min(K::BITS).div_ceil(DIGIT_BITS) as usize).max(1);
    hist.clear();
    hist.resize(digits * BUCKETS, 0);
    let mask = (BUCKETS - 1) as u64;
    for item in data.iter() {
        let k = key(item);
        for (d, h) in hist.chunks_exact_mut(BUCKETS).enumerate() {
            h[((k >> (DIGIT_BITS * d as u32)).low64() & mask) as usize] += 1;
        }
    }
    // Ping-pong: the source flips between `data` and `scratch`; a pass
    // is skipped entirely when one bucket holds every key (constant
    // digit).  The histogram slice is prefix-summed in place into the
    // pass's scatter offsets.
    let mut in_data = true;
    for (d, h) in hist.chunks_exact_mut(BUCKETS).enumerate() {
        if h.iter().any(|&c| c as usize == n) {
            continue;
        }
        let mut sum = 0u32;
        for c in h.iter_mut() {
            let count = *c;
            *c = sum;
            sum += count;
        }
        let shift = DIGIT_BITS * d as u32;
        let (src, dst): (&[T], &mut [T]) =
            if in_data { (&*data, &mut *scratch) } else { (&*scratch, &mut *data) };
        for item in src.iter() {
            let digit = ((key(item) >> shift).low64() & mask) as usize;
            dst[h[digit] as usize] = *item;
            h[digit] += 1;
        }
        in_data = !in_data;
    }
    if !in_data {
        data.copy_from_slice(scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_matches_std(mut keys: Vec<u64>, bits: u32) {
        let mut expected = keys.clone();
        expected.sort_unstable();
        RadixSorter::new().sort_keys(&mut keys, bits);
        assert_eq!(keys, expected);
    }

    fn assert_matches_std_wide(mut keys: Vec<u128>, bits: u32) {
        let mut expected = keys.clone();
        expected.sort_unstable();
        RadixSorter::new().sort_keys(&mut keys, bits);
        assert_eq!(keys, expected);
    }

    #[test]
    fn empty_and_singleton() {
        assert_matches_std(vec![], 64);
        assert_matches_std(vec![42], 64);
        assert_matches_std(vec![0, 0], 0);
    }

    #[test]
    fn small_falls_back_to_comparison_sort() {
        assert_matches_std((0..SMALL_SORT as u64 - 1).rev().collect(), 64);
    }

    #[test]
    fn large_random_full_width() {
        let keys: Vec<u64> =
            (0..10_000u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17)).collect();
        assert_matches_std(keys, 64);
    }

    #[test]
    fn bounded_bits_skip_high_digits() {
        // 5·4 = 20 significant bits: only two 12-bit passes may run.
        let keys: Vec<u64> = (0..5_000u64).map(|i| (i * 2654435761) % (1 << 20)).collect();
        assert_matches_std(keys, 20);
    }

    #[test]
    fn all_equal_and_presorted_short_circuit() {
        assert_matches_std(vec![7; 4096], 64);
        assert_matches_std((0..4096).collect(), 64);
        assert_matches_std((0..4096).rev().collect(), 64);
    }

    #[test]
    fn keys_differing_only_in_the_top_byte() {
        let keys: Vec<u64> =
            (0..2_000u64).map(|i| ((i * 37) % 251) << 56 | 0x00AA_BBCC_DDEE_FF11).collect();
        assert_matches_std(keys, 64);
    }

    #[test]
    fn wide_large_random_full_width() {
        let keys: Vec<u128> = (0..10_000u128)
            .map(|i| {
                let lo = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
                let hi = (i as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F).rotate_left(31);
                (u128::from(hi) << 64) | u128::from(lo)
            })
            .collect();
        assert_matches_std_wide(keys, 128);
    }

    #[test]
    fn wide_keys_differing_only_above_bit_64() {
        // The low word is constant, so every pass below digit 6 is a
        // constant-digit skip and the order is decided entirely in the
        // high word.
        let keys: Vec<u128> =
            (0..3_000u128).map(|i| ((i * 37) % 1021) << 80 | 0xDEAD_BEEF).collect();
        assert_matches_std_wide(keys, 128);
    }

    #[test]
    fn wide_bounded_bits_skip_high_digits() {
        // 5·25 = 125 significant bits: eleven 12-bit passes cover them.
        let keys: Vec<u128> = (0..5_000u128)
            .map(|i| (i * 0x9E37_79B9u128).wrapping_mul(0x1_0000_0001) % (1u128 << 125))
            .collect();
        assert_matches_std_wide(keys, 125);
    }

    #[test]
    fn wide_presorted_and_equal_short_circuit() {
        assert_matches_std_wide(vec![7u128 << 90; 4096], 128);
        assert_matches_std_wide((0..4096u128).map(|i| i << 70).collect(), 128);
    }

    #[test]
    fn pairs_sort_by_key_and_keep_payload() {
        let mut pairs: Vec<(u64, u64)> =
            (0..3_000u64).map(|i| (i.wrapping_mul(0x9E37_79B9) % 4096, i)).collect();
        let mut expected = pairs.clone();
        expected.sort_by_key(|p| p.0); // stable, like the radix passes
        RadixSorter::new().sort_pairs(&mut pairs, 64);
        assert_eq!(pairs, expected);
    }

    #[test]
    fn wide_pairs_sort_by_key_and_keep_payload() {
        let mut pairs: Vec<(u128, u64)> = (0..3_000u64)
            .map(|i| (u128::from(i.wrapping_mul(0x9E37_79B9) % 4096) << 72, i))
            .collect();
        let mut expected = pairs.clone();
        expected.sort_by_key(|p| p.0); // stable, like the radix passes
        RadixSorter::new().sort_pairs(&mut pairs, 128);
        assert_eq!(pairs, expected);
    }

    #[test]
    fn small_pairs_with_duplicate_keys_stay_stable() {
        // Below SMALL_SORT the fallback must keep the radix passes'
        // stability contract: equal keys preserve input order.
        let mut pairs: Vec<(u64, u64)> = (0..300u64).map(|i| (i % 4, i)).collect();
        let mut expected = pairs.clone();
        expected.sort_by_key(|p| p.0);
        RadixSorter::new().sort_pairs(&mut pairs, 64);
        assert_eq!(pairs, expected);
    }

    #[test]
    fn sorter_reuse_across_widths() {
        let mut sorter = RadixSorter::new();
        for k in 2..=12u32 {
            let bits = 5 * k;
            let mut keys: Vec<u64> = (0..1_500u64)
                .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) & ((1u64 << bits) - 1))
                .collect();
            let mut expected = keys.clone();
            expected.sort_unstable();
            sorter.sort_keys(&mut keys, bits);
            assert_eq!(keys, expected, "k = {k}");
        }
    }

    #[test]
    fn wide_sorter_reuse_across_k() {
        let mut sorter: RadixSorter<u128> = RadixSorter::new();
        for k in [13u32, 17, 21, 25] {
            let bits = 5 * k;
            let mut keys: Vec<u128> = (0..1_500u128)
                .map(|i| {
                    let x = (i + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15_F39C_C060);
                    x & ((1u128 << bits) - 1)
                })
                .collect();
            let mut expected = keys.clone();
            expected.sort_unstable();
            sorter.sort_keys(&mut keys, bits);
            assert_eq!(keys, expected, "k = {k}");
        }
    }
}
