//! Width-generic packed permutation keys.
//!
//! The flat counting pipeline never materialises a [`crate::Permutation`]:
//! each database row becomes one integer **key** holding the permutation's
//! elements in 5-bit fields (element at position `p` of Π occupies bits
//! `5p..5p+5`).  Packing is injective, so sorting and run-scanning keys
//! counts permutations exactly.
//!
//! [`PackedKey`] abstracts the key's machine word so the same monomorphized
//! kernels run at two widths:
//!
//! * `u64` — 12 fields (`5·12 = 60 ≤ 64` bits), the historical fast path;
//! * `u128` — 25 fields (`5·25 = 125 ≤ 128` bits), opening k = 13..=25
//!   to the sorted-run pipeline that previously fell back to hashing.
//!
//! The trait is **sealed**: exactly these two widths exist, and every
//! consumer dispatches over them once per workload through
//! [`for_packed_k!`](crate::for_packed_k) so the per-row loops stay
//! branch-free.  Code outside this module must derive shifts and masks
//! through [`PackedKey::elem_shift`] / [`PackedKey::key_bits`] /
//! [`PackedKey::field`] rather than spelling the field width; dplint's
//! `key-width` pass requires a `// width:` proof comment at every
//! `BITS_PER_ELEM` call site to keep that discipline auditable.

use std::fmt::Debug;
use std::hash::Hash;
use std::ops::{BitAnd, BitOr, BitOrAssign, Shl, Shr};

mod sealed {
    /// Closed world: packed keys are exactly `u64` and `u128`.
    pub trait Sealed {}
    impl Sealed for u64 {}
    impl Sealed for u128 {}
}

/// An unsigned machine word holding a packed permutation in 5-bit fields.
///
/// Implemented by `u64` (k ≤ 12) and `u128` (k ≤ 25) only — the trait is
/// sealed.  All bit arithmetic the pipeline needs is expressed through
/// this surface, so the radix sorter, counters, codebooks, and the fused
/// rank-tile packer are written once and monomorphized per width.
pub trait PackedKey:
    sealed::Sealed
    + Copy
    + Ord
    + Eq
    + Hash
    + Debug
    + Default
    + Send
    + Sync
    + 'static
    + Shl<u32, Output = Self>
    + Shr<u32, Output = Self>
    + BitAnd<Output = Self>
    + BitOr<Output = Self>
    + BitOrAssign
{
    /// Total bits in the word (64 or 128).
    const BITS: u32;

    /// Bits per permutation element.  Five bits hold any site index
    /// below [`crate::perm::MAX_K`] = 32.
    // width: the 5-bit field is the definition of the packed layout; both
    // widths share it so field arithmetic is width-independent.
    const BITS_PER_ELEM: u32 = 5;

    /// Largest permutation length whose packed key fits this word:
    /// `⌊BITS / BITS_PER_ELEM⌋` (12 for `u64`, 25 for `u128`).
    const MAX_K: usize;

    /// The all-zero key (the empty permutation's packing).
    const ZERO: Self;

    /// Widens a permutation element (a site index `< 32`) into the word.
    fn from_elem(e: u8) -> Self;

    /// The low 64 bits of the word — digit and field extraction narrows
    /// through this so the scalar loops do 64-bit arithmetic at both
    /// widths.
    fn low64(self) -> u64;

    /// Bit offset of the field at position `pos`.
    #[inline]
    fn elem_shift(pos: usize) -> u32 {
        // width: positions map to fields at a fixed 5-bit stride.
        Self::BITS_PER_ELEM * pos as u32
    }

    /// Significant bits of a packed permutation of length `k` — the
    /// radix sorter's bound.
    #[inline]
    fn key_bits(k: usize) -> u32 {
        // width: k fields of 5 bits each; positions above k are zero.
        Self::BITS_PER_ELEM * k as u32
    }

    /// The element stored at position `pos` (the inverse of packing one
    /// field).
    #[inline]
    fn field(self, pos: usize) -> u8 {
        ((self >> Self::elem_shift(pos)).low64() & 0x1F) as u8
    }
}

impl PackedKey for u64 {
    const BITS: u32 = u64::BITS;
    // width: ⌊64 / 5⌋ = 12 fields fit a u64.
    const MAX_K: usize = (u64::BITS / Self::BITS_PER_ELEM) as usize;
    const ZERO: Self = 0;

    #[inline]
    fn from_elem(e: u8) -> Self {
        u64::from(e)
    }

    #[inline]
    fn low64(self) -> u64 {
        self
    }
}

impl PackedKey for u128 {
    const BITS: u32 = u128::BITS;
    // width: ⌊128 / 5⌋ = 25 fields fit a u128.
    const MAX_K: usize = (u128::BITS / Self::BITS_PER_ELEM) as usize;
    const ZERO: Self = 0;

    #[inline]
    fn from_elem(e: u8) -> Self {
        u128::from(e)
    }

    #[inline]
    fn low64(self) -> u64 {
        self as u64
    }
}

/// Dispatches a block of code over the packed-key width that fits `k`,
/// falling back when no width does.
///
/// The first arm binds the chosen width to a caller-named type parameter
/// and runs once with `u64` (k ≤ 12) or `u128` (k ≤ 25); the `_` arm is
/// the hash-path fallback for k ≥ 26.  Each workload dispatches **once**,
/// so the monomorphized kernels under the arm contain no width branches:
///
/// ```
/// use dp_permutation::key::PackedKey;
/// let k = 16;
/// let max_k = dp_permutation::for_packed_k!(k, K => K::MAX_K, _ => usize::MAX);
/// assert_eq!(max_k, 25);
/// ```
#[macro_export]
macro_rules! for_packed_k {
    ($k:expr, $K:ident => $body:expr, _ => $fallback:expr $(,)?) => {{
        let for_packed_k: usize = $k;
        if for_packed_k <= <u64 as $crate::key::PackedKey>::MAX_K {
            #[allow(non_camel_case_types)]
            type $K = u64;
            $body
        } else if for_packed_k <= <u128 as $crate::key::PackedKey>::MAX_K {
            #[allow(non_camel_case_types)]
            type $K = u128;
            $body
        } else {
            $fallback
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_and_capacities() {
        assert_eq!(<u64 as PackedKey>::BITS, 64);
        assert_eq!(<u128 as PackedKey>::BITS, 128);
        assert_eq!(<u64 as PackedKey>::MAX_K, 12);
        assert_eq!(<u128 as PackedKey>::MAX_K, 25);
        // width: 5·MAX_K must fit the word with < 5 bits to spare.
        assert!(<u64 as PackedKey>::key_bits(<u64 as PackedKey>::MAX_K) <= 64);
        assert!(<u128 as PackedKey>::key_bits(<u128 as PackedKey>::MAX_K) <= 128);
    }

    fn pack_fields<K: PackedKey>(fields: &[u8]) -> K {
        let mut key = K::ZERO;
        for (pos, &f) in fields.iter().enumerate() {
            key |= K::from_elem(f) << K::elem_shift(pos);
        }
        key
    }

    #[test]
    fn field_round_trips_u64() {
        let fields: Vec<u8> = (0..12u8).rev().collect();
        let key: u64 = pack_fields(&fields);
        for (pos, &f) in fields.iter().enumerate() {
            assert_eq!(key.field(pos), f, "pos {pos}");
        }
    }

    #[test]
    fn field_round_trips_u128_above_the_u64_boundary() {
        // Fields at positions 12..25 live strictly above bit 64.
        let fields: Vec<u8> = (0..25u8).map(|i| (i * 7) % 32).collect();
        let key: u128 = pack_fields(&fields);
        for (pos, &f) in fields.iter().enumerate() {
            assert_eq!(key.field(pos), f, "pos {pos}");
        }
        assert!(key >> 64 != 0, "test must exercise the high word");
    }

    #[test]
    fn low64_truncates() {
        let key: u128 = (1u128 << 100) | 0xABCD;
        assert_eq!(key.low64(), 0xABCD);
    }

    #[test]
    fn for_packed_k_selects_by_k() {
        for (k, expected_bits) in [(0, 64), (12, 64), (13, 128), (25, 128)] {
            let bits = for_packed_k!(k, K => K::BITS, _ => 0);
            assert_eq!(bits, expected_bits, "k = {k}");
        }
        assert_eq!(for_packed_k!(26, K => K::BITS, _ => 0), 0);
    }
}
