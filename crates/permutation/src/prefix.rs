//! Truncated distance permutations (top-ℓ prefixes).
//!
//! The paper's §4 observation — "once we have about twice as many sites as
//! dimensions, there is little value in adding more sites; the distance
//! permutation contains little more information" — suggests the dual
//! economy: keep many sites for discrimination but *store only the first
//! ℓ entries* of each permutation.  That truncated form is what
//! Chávez–Figueroa–Navarro's implementations use in practice, and its
//! distinct-count-per-ℓ is exactly the ordered-prefix refinement chain of
//! §2 (Figs 1–2: ℓ = 1 is the nearest-neighbour Voronoi diagram, ℓ = k
//! the full permutation diagram).
//!
//! [`PrefixPermutation`] stores the ℓ nearest site indices in order,
//! remembering k; [`prefix_footrule`] is the induced footrule of
//! Fagin–Kumar–Sivakumar (*Comparing top k lists*, SODA'03) with location
//! parameter ℓ: sites absent from a prefix are charged position ℓ.

use crate::perm::{Permutation, PermutationError, MAX_K};
use std::fmt;

/// The first ℓ entries of a distance permutation of `0..k`.
///
/// Unused trailing slots are zeroed so derived `Eq`/`Hash`/`Ord` are well
/// defined; `Ord` sorts by (k, ℓ) first, then lexicographically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PrefixPermutation {
    k: u8,
    len: u8,
    items: [u8; MAX_K],
}

impl PrefixPermutation {
    /// Truncates a full permutation to its first `len` entries.
    ///
    /// # Panics
    /// Panics if `len > p.len()`.
    pub fn from_permutation(p: &Permutation, len: usize) -> Self {
        assert!(len <= p.len(), "prefix length {len} exceeds k = {}", p.len());
        let mut items = [0u8; MAX_K];
        items[..len].copy_from_slice(&p.as_slice()[..len]);
        Self { k: p.len() as u8, len: len as u8, items }
    }

    /// Builds from raw entries: the `elements` must be distinct values in
    /// `0..k`.
    pub fn from_slice(k: usize, elements: &[u8]) -> Result<Self, PermutationError> {
        if k > MAX_K {
            return Err(PermutationError::TooLong(k));
        }
        if elements.len() > k {
            return Err(PermutationError::NotAPermutation);
        }
        let mut seen = 0u32;
        for &e in elements {
            if (e as usize) >= k || seen & (1 << e) != 0 {
                return Err(PermutationError::NotAPermutation);
            }
            seen |= 1 << e;
        }
        let mut items = [0u8; MAX_K];
        items[..elements.len()].copy_from_slice(elements);
        Ok(Self { k: k as u8, len: elements.len() as u8, items })
    }

    /// Number of sites k in the underlying space.
    #[inline]
    pub fn k(&self) -> usize {
        self.k as usize
    }

    /// Prefix length ℓ.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True iff ℓ = 0.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The stored entries (nearest site first).
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.items[..self.len as usize]
    }

    /// Rank of site `e` within the prefix, if present.
    pub fn position_of(&self, e: u8) -> Option<usize> {
        self.as_slice().iter().position(|&x| x == e)
    }

    /// Truncates further to the first `len` entries.
    ///
    /// # Panics
    /// Panics if `len > self.len()`.
    pub fn truncate(&self, len: usize) -> Self {
        assert!(len <= self.len(), "cannot extend a prefix ({len} > {})", self.len());
        let mut items = [0u8; MAX_K];
        items[..len].copy_from_slice(&self.items[..len]);
        Self { k: self.k, len: len as u8, items }
    }

    /// Promotes a full-length prefix (ℓ = k) back to a [`Permutation`].
    pub fn to_permutation(&self) -> Option<Permutation> {
        if self.len == self.k {
            Permutation::from_slice(self.as_slice()).ok()
        } else {
            None
        }
    }
}

impl fmt::Display for PrefixPermutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> =
            self.as_slice().iter().map(std::string::ToString::to_string).collect();
        write!(f, "[{}…/{}]", parts.join(","), self.k)
    }
}

impl From<Permutation> for PrefixPermutation {
    fn from(p: Permutation) -> Self {
        Self::from_permutation(&p, p.len())
    }
}

/// Induced Spearman footrule between two equal-shape prefixes
/// (Fagin–Kumar–Sivakumar, location parameter ℓ).
///
/// Every site in either prefix contributes |rank in a − rank in b|, where
/// a missing site is charged rank ℓ.  Sites in neither prefix contribute
/// nothing.  For ℓ = k this equals [`crate::permdist::spearman_footrule`];
/// for all ℓ it is a genuine metric on prefixes of a fixed shape
/// (property-tested exhaustively for small k).
///
/// # Panics
/// Panics if the two prefixes disagree on k or ℓ.
pub fn prefix_footrule(a: &PrefixPermutation, b: &PrefixPermutation) -> u64 {
    assert_eq!(a.k, b.k, "prefixes over different site counts ({} vs {})", a.k, b.k);
    assert_eq!(a.len, b.len, "prefixes of different lengths ({} vs {})", a.len, b.len);
    let l = a.len as usize;
    let mut pos_a = [u8::MAX; MAX_K];
    let mut pos_b = [u8::MAX; MAX_K];
    for (i, &e) in a.as_slice().iter().enumerate() {
        pos_a[e as usize] = i as u8;
    }
    for (i, &e) in b.as_slice().iter().enumerate() {
        pos_b[e as usize] = i as u8;
    }
    let mut total = 0u64;
    for e in 0..a.k as usize {
        let ra = pos_a[e];
        let rb = pos_b[e];
        if ra == u8::MAX && rb == u8::MAX {
            continue;
        }
        let ra = if ra == u8::MAX { l as u64 } else { u64::from(ra) };
        let rb = if rb == u8::MAX { l as u64 } else { u64::from(rb) };
        total += ra.abs_diff(rb);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::permdist::spearman_footrule;

    #[test]
    fn truncation_keeps_nearest_sites() {
        let p = Permutation::from_slice(&[3, 1, 4, 0, 2]).unwrap();
        let pre = PrefixPermutation::from_permutation(&p, 3);
        assert_eq!(pre.as_slice(), &[3, 1, 4]);
        assert_eq!(pre.k(), 5);
        assert_eq!(pre.len(), 3);
        assert_eq!(pre.position_of(4), Some(2));
        assert_eq!(pre.position_of(0), None);
    }

    #[test]
    fn from_slice_validates() {
        assert!(PrefixPermutation::from_slice(5, &[4, 0]).is_ok());
        assert_eq!(
            PrefixPermutation::from_slice(5, &[4, 4]),
            Err(PermutationError::NotAPermutation)
        );
        assert_eq!(PrefixPermutation::from_slice(3, &[3]), Err(PermutationError::NotAPermutation));
        assert_eq!(
            PrefixPermutation::from_slice(2, &[0, 1, 1]),
            Err(PermutationError::NotAPermutation)
        );
        assert_eq!(
            PrefixPermutation::from_slice(MAX_K + 1, &[0]),
            Err(PermutationError::TooLong(MAX_K + 1))
        );
    }

    #[test]
    fn full_length_prefix_roundtrips_to_permutation() {
        let p = Permutation::from_slice(&[2, 0, 1]).unwrap();
        let pre: PrefixPermutation = p.into();
        assert_eq!(pre.to_permutation(), Some(p));
        let shorter = pre.truncate(2);
        assert_eq!(shorter.to_permutation(), None);
    }

    #[test]
    fn footrule_reduces_to_spearman_at_full_length() {
        let a = Permutation::from_slice(&[2, 0, 3, 1]).unwrap();
        let b = Permutation::from_slice(&[1, 3, 0, 2]).unwrap();
        let pa: PrefixPermutation = a.into();
        let pb: PrefixPermutation = b.into();
        assert_eq!(prefix_footrule(&pa, &pb), spearman_footrule(&a, &b));
    }

    #[test]
    fn footrule_on_disjoint_prefixes_is_maximal() {
        // Disjoint top-2 lists over 4 sites: each of the 4 involved sites
        // pays |rank − ℓ|: (0→2)+(1→2)+(2←0)+(2←1) = 2+1+2+1 = 6.
        let a = PrefixPermutation::from_slice(4, &[0, 1]).unwrap();
        let b = PrefixPermutation::from_slice(4, &[2, 3]).unwrap();
        assert_eq!(prefix_footrule(&a, &b), 6);
    }

    #[test]
    fn footrule_identity_symmetry_triangle_exhaustive() {
        // All length-2 prefixes over k = 4: exhaustive metric check.
        let mut prefixes = Vec::new();
        for p in Permutation::all(4) {
            prefixes.push(PrefixPermutation::from_permutation(&p, 2));
        }
        prefixes.sort_unstable();
        prefixes.dedup();
        assert_eq!(prefixes.len(), 12); // 4·3 ordered pairs
        for a in &prefixes {
            for b in &prefixes {
                let dab = prefix_footrule(a, b);
                assert_eq!(dab, prefix_footrule(b, a), "symmetry");
                assert_eq!(dab == 0, a == b, "identity of indiscernibles");
                for c in &prefixes {
                    let dac = prefix_footrule(a, c);
                    let dcb = prefix_footrule(c, b);
                    assert!(dab <= dac + dcb, "triangle: {a} {b} {c}");
                }
            }
        }
    }

    #[test]
    fn display_shows_prefix_and_k() {
        let pre = PrefixPermutation::from_slice(6, &[5, 0]).unwrap();
        assert_eq!(pre.to_string(), "[5,0…/6]");
    }

    #[test]
    #[should_panic(expected = "different lengths")]
    fn footrule_rejects_mismatched_lengths() {
        let a = PrefixPermutation::from_slice(4, &[0, 1]).unwrap();
        let b = PrefixPermutation::from_slice(4, &[0]).unwrap();
        prefix_footrule(&a, &b);
    }

    #[test]
    fn empty_prefix_distance_zero() {
        let a = PrefixPermutation::from_slice(4, &[]).unwrap();
        let b = PrefixPermutation::from_slice(4, &[]).unwrap();
        assert!(a.is_empty());
        assert_eq!(prefix_footrule(&a, &b), 0);
    }
}
