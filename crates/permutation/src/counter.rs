//! Counting distinct distance permutations.
//!
//! This is the measurement the paper's experiments perform: enumerate the
//! distance permutation of every database element and count the distinct
//! values (`sort | uniq | wc` over the SISAP `build-distperm-*` output, §5).
//! Two counters implement it:
//!
//! * [`PermutationCounter`] — an Fx-hashed multiset for arbitrary k and
//!   point streams; also tracks occupancy (how many elements map to each
//!   permutation), which Table 2's analysis uses ("about 10 database
//!   points per permutation").
//! * [`PackedPermutationCounter`] — the sorted-run pipeline behind the
//!   flat engine: inserts append a packed key (a [`PackedKey`] word —
//!   `u64` for k ≤ 12, `u128` for k ≤ 25), [`finalize`] (radix-)sorts
//!   the buffer once and [`count_sorted_runs`] turns the sorted runs
//!   into occupancies.  No hashing anywhere on the hot path.
//!
//! Either way the result is a [`PackedCountSummary`], which keeps one
//! `(key, occupancy)` pair per **distinct** permutation — O(distinct)
//! memory, so downstream consumers (codebooks, Huffman, the survey)
//! never pay for n again.  [`crate::shard::ShardedCounter`] produces
//! the same summary without ever buffering all n keys.
//!
//! [`finalize`]: PackedPermutationCounter::finalize

use crate::compute::DistPermComputer;
use crate::fxhash::FxHashMap;
use crate::key::PackedKey;
use crate::perm::Permutation;
use crate::radix::RadixSorter;
use dp_metric::Metric;

/// Run lengths of consecutive equal values in a sorted (or at least
/// run-grouped) slice: `[3, 3, 3, 7, 9, 9]` → `[3, 1, 2]`.
///
/// The shared scan under every sort-then-dedup consumer in this crate —
/// [`PackedPermutationCounter::finalize`] derives occupancies from it,
/// [`PermutationCounter::sorted_counts`] collapses its sorted key stream
/// with it, and the flat codebooks in [`crate::encoding`] locate run
/// starts through it.
pub fn count_sorted_runs<T: PartialEq>(sorted: &[T]) -> Vec<u64> {
    let mut runs = Vec::new();
    let mut start = 0usize;
    for i in 1..sorted.len() {
        if sorted[i] != sorted[start] {
            runs.push((i - start) as u64);
            start = i;
        }
    }
    if start < sorted.len() {
        runs.push((sorted.len() - start) as u64);
    }
    runs
}

/// Accumulates distance permutations and distinct-count statistics.
#[derive(Debug, Clone, Default)]
pub struct PermutationCounter {
    counts: FxHashMap<Permutation, u64>,
    total: u64,
}

impl PermutationCounter {
    /// An empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one occurrence of `p`.
    pub fn insert(&mut self, p: Permutation) {
        *self.counts.entry(p).or_insert(0) += 1;
        self.total += 1;
    }

    /// Number of distinct permutations observed.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean occupancy: observations per distinct permutation.
    pub fn mean_occupancy(&self) -> f64 {
        if self.counts.is_empty() {
            0.0
        } else {
            self.total as f64 / self.counts.len() as f64
        }
    }

    /// Iterator over `(permutation, occurrence count)`.
    pub fn iter(&self) -> impl Iterator<Item = (&Permutation, &u64)> {
        self.counts.iter()
    }

    /// The observed permutations, sorted lexicographically — a stable order
    /// for codebook assignment and for diffing against other runs.
    pub fn sorted_permutations(&self) -> Vec<Permutation> {
        let mut v: Vec<Permutation> = self.counts.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// `(permutation, occurrence count)` pairs sorted lexicographically —
    /// the order a codebook built from [`Self::sorted_permutations`]
    /// assigns ids in, so mapping this to its counts *is* the frequency
    /// table both survey engines emit.
    ///
    /// For a uniform permutation length `k ≤ WIDE_MAX_K` the sort runs
    /// as a radix sort over packed lexicographic keys at the width that
    /// fits `k` (no `Permutation` is compared); mixed or longer lengths
    /// fall back to a comparison sort with identical output.
    pub fn sorted_counts(&self) -> Vec<(Permutation, u64)> {
        let uniform_k = self.counts.keys().next().map(super::perm::Permutation::len).filter(|&k| {
            k <= crate::compute::WIDE_MAX_K && self.counts.keys().all(|p| p.len() == k)
        });
        if let Some(k) = uniform_k {
            crate::for_packed_k!(k, K => self.sorted_counts_radix::<K>(k),
                _ => self.sorted_counts_cmp())
        } else {
            self.sorted_counts_cmp()
        }
    }

    /// The radix arm of [`Self::sorted_counts`]: sort packed
    /// (lexicographic-layout) keys of a uniform length `k` at width `K`.
    fn sorted_counts_radix<K: PackedKey>(&self, k: usize) -> Vec<(Permutation, u64)> {
        let mut pairs: Vec<(K, u64)> =
            self.counts.iter().map(|(p, &c)| (pack_perm::<K>(p), c)).collect();
        RadixSorter::<K>::new().sort_pairs(&mut pairs, K::key_bits(k));
        pairs.into_iter().map(|(key, c)| (decode_packed(key, k), c)).collect()
    }

    /// The comparison-sort arm of [`Self::sorted_counts`] — identical
    /// output, works for any mix of lengths.
    fn sorted_counts_cmp(&self) -> Vec<(Permutation, u64)> {
        let mut v: Vec<(Permutation, u64)> = self.counts.iter().map(|(&p, &c)| (p, c)).collect();
        v.sort_unstable_by_key(|&(p, _)| p);
        v
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: &PermutationCounter) {
        for (&p, &c) in other.counts.iter() {
            *self.counts.entry(p).or_insert(0) += c;
        }
        self.total += other.total;
    }

    /// Occupancy histogram: `histogram[i]` = number of permutations seen
    /// exactly `i+1` times (Fig 7's "cells the database happens to miss"
    /// analysis looks at the other side of this distribution).
    pub fn occupancy_histogram(&self) -> Vec<u64> {
        let max = self.counts.values().copied().max().unwrap_or(0) as usize;
        let mut hist = vec![0u64; max];
        for &c in self.counts.values() {
            hist[(c - 1) as usize] += 1;
        }
        hist
    }

    /// The most heavily occupied permutation and its count.
    pub fn mode(&self) -> Option<(Permutation, u64)> {
        self.counts.iter().map(|(&p, &c)| (p, c)).max_by_key(|&(p, c)| (c, std::cmp::Reverse(p)))
    }
}

/// Occurrence counter keyed on packed permutation codes (5 bits per
/// element in a [`PackedKey`] word — `u64` for k ≤ 12, `u128` for
/// k ≤ 25).
///
/// The fast engine behind flat counting.  Inserts only append to a key
/// buffer (no hashing, no per-insert cache miss — crucial when most
/// permutations are distinct and a hash table would take a DRAM miss per
/// probe); distinct-counting happens once, in [`Self::finalize`], as a
/// cache-friendly sort + run scan.  Packing is injective, so the distinct
/// count equals the distinct count of the underlying permutations
/// exactly.
#[derive(Debug, Clone)]
pub struct PackedPermutationCounter<K: PackedKey = u64> {
    k: usize,
    keys: Vec<K>,
}

impl<K: PackedKey> PackedPermutationCounter<K> {
    /// An empty counter for permutations of length `k`.
    ///
    /// # Panics
    /// Panics if `k` exceeds the key width's capacity (`K::MAX_K`).
    pub fn new(k: usize) -> Self {
        assert!(
            k <= K::MAX_K,
            "k = {k} exceeds MAX_K = {} for {}-bit packed keys",
            K::MAX_K,
            K::BITS
        );
        Self { k, keys: Vec::new() }
    }

    /// Permutation length k.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Records one occurrence of a packed key (the [`pack_perm`]
    /// lexicographic layout: position `p` in group `k-1-p`).
    #[inline]
    pub fn insert_key(&mut self, key: K) {
        self.keys.push(key);
    }

    /// Records one occurrence of a permutation value.
    ///
    /// # Panics
    /// Panics if `p.len() != k`.
    pub fn insert(&mut self, p: &Permutation) {
        assert_eq!(p.len(), self.k, "permutation length mismatch");
        self.insert_key(pack_perm(p));
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.keys.len() as u64
    }

    /// Sorts the key buffer (LSD radix over the `5·k` significant bits)
    /// and produces the summary statistics.
    ///
    /// Allocates one scratch buffer; loops that finalize repeatedly
    /// should reuse a sorter through [`Self::finalize_with`].
    pub fn finalize(self) -> PackedCountSummary<K> {
        self.finalize_with(&mut RadixSorter::new())
    }

    /// [`Self::finalize`] through a caller-owned [`RadixSorter`], so
    /// repeated finalizes (the per-k survey loop) share one scratch
    /// buffer instead of reallocating.
    pub fn finalize_with(mut self, sorter: &mut RadixSorter<K>) -> PackedCountSummary<K> {
        sorter.sort_keys(&mut self.keys, K::key_bits(self.k));
        let total = self.keys.len() as u64;
        let occupancies = count_sorted_runs(&self.keys);
        // Compact the sorted buffer to its run starts in place: the
        // summary keeps one key per *distinct* permutation, never the
        // n-key observation buffer (the streaming sharded path builds
        // the same representation without ever materialising n keys).
        let mut pos = 0usize;
        for (i, &occ) in occupancies.iter().enumerate() {
            self.keys[i] = self.keys[pos];
            pos += occ as usize;
        }
        self.keys.truncate(occupancies.len());
        self.keys.shrink_to_fit();
        PackedCountSummary { k: self.k, keys: self.keys, occupancies, total }
    }

    /// Wraps an already-collected key buffer (the batched scans build the
    /// buffer directly and only then enter counter land).
    ///
    /// # Panics
    /// Panics if `k` exceeds the key width's capacity.
    pub(crate) fn from_keys(k: usize, keys: Vec<K>) -> Self {
        let mut c = Self::new(k);
        c.keys = keys;
        c
    }

    /// The raw key buffer, consumed (sorted only if the collector sorted
    /// it — [`Self::finalize`] handles either state).
    pub(crate) fn into_keys(self) -> Vec<K> {
        self.keys
    }

    /// Radix-sorts the key buffer in place now, so a later
    /// [`Self::finalize`] hits the sorted fast path — the parallel
    /// collectors sort per-chunk buffers inside their workers and merge
    /// the sorted runs.
    pub(crate) fn sort_keys(&mut self, sorter: &mut RadixSorter<K>) {
        sorter.sort_keys(&mut self.keys, K::key_bits(self.k));
    }
}

/// Finalized statistics of a [`PackedPermutationCounter`].
///
/// Holds one key per **distinct** permutation (ascending key order, which
/// the [`pack_perm`] layout makes lexicographic order) plus its occupancy
/// count and the observation total — `O(distinct)` memory, independent of
/// the database size.  Both counting engines end here: the in-memory
/// sort + run-scan ([`PackedPermutationCounter::finalize`]) and the
/// bounded-memory streaming merge ([`crate::shard::ShardedCounter`])
/// produce identical summaries by construction.
#[derive(Debug, Clone)]
pub struct PackedCountSummary<K: PackedKey = u64> {
    k: usize,
    keys: Vec<K>,
    occupancies: Vec<u64>,
    total: u64,
}

impl<K: PackedKey> PackedCountSummary<K> {
    /// Builds a summary directly from ascending `(key, count)` runs —
    /// the streaming sharded counter's hand-off; no n-key buffer ever
    /// exists on that path.
    pub(crate) fn from_counted_runs(k: usize, runs: Vec<(K, u64)>) -> Self {
        debug_assert!(runs.windows(2).all(|w| w[0].0 < w[1].0), "runs must be strictly ascending");
        let total = runs.iter().map(|&(_, c)| c).sum();
        let (keys, occupancies) = runs.into_iter().unzip();
        Self { k, keys, occupancies, total }
    }

    /// Number of distinct permutations observed.
    pub fn distinct(&self) -> usize {
        self.occupancies.len()
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean occupancy: observations per distinct permutation.
    pub fn mean_occupancy(&self) -> f64 {
        if self.occupancies.is_empty() {
            0.0
        } else {
            self.total() as f64 / self.distinct() as f64
        }
    }

    /// Permutation length k.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The distinct permutations, decoded, in lexicographic order —
    /// the same order as [`PermutationCounter::sorted_permutations`].
    pub fn permutations(&self) -> Vec<Permutation> {
        self.distinct_keys().map(|key| self.decode(key)).collect()
    }

    /// The distinct packed keys in ascending key order — one per
    /// occupancy entry.  The [`pack_perm`] layout makes this the
    /// lexicographic order of the decoded permutations.
    pub fn distinct_keys(&self) -> impl Iterator<Item = K> + '_ {
        self.keys.iter().copied()
    }

    /// Iterator over `(permutation, occurrence count)`, in
    /// lexicographic order.  The counterpart of
    /// [`PermutationCounter::iter`] — the flat survey path uses it to
    /// recover the occupancy distribution without re-hashing every
    /// observation.
    pub fn iter(&self) -> impl Iterator<Item = (Permutation, u64)> + '_ {
        self.keys
            .iter()
            .zip(self.occupancies.iter())
            .map(|(&key, &count)| (self.decode(key), count))
    }

    /// Occurrence counts ordered by the **lexicographic** rank of each
    /// distinct permutation — the order a codebook built from
    /// [`PermutationCounter::sorted_permutations`] assigns ids in, so a
    /// frequency table built from this vector is element-for-element
    /// identical to the hash-counter path's.
    ///
    /// The [`pack_perm`] layout puts position 0 in the most significant
    /// occupied group, so ascending key order *is* lexicographic order
    /// and the finalized occupancies are already this table — no second
    /// sort, no decode.
    pub fn lexicographic_counts(&self) -> Vec<u64> {
        self.occupancies.clone()
    }

    /// Expands into an ordinary [`PermutationCounter`] (same counts).
    pub fn unpack(&self) -> PermutationCounter {
        let mut out = PermutationCounter::new();
        for (p, count) in self.iter() {
            for _ in 0..count {
                out.insert(p);
            }
        }
        out
    }

    fn decode(&self, key: K) -> Permutation {
        decode_packed(key, self.k)
    }
}

/// Packs a permutation into its 5-bits-per-element **lexicographic**
/// key — position `p` lives in group `k-1-p`, so position 0 occupies
/// the most significant occupied group and ascending integer order on
/// keys of a fixed length coincides with [`Permutation`]'s
/// lexicographic order.  The [`PackedPermutationCounter`] key layout,
/// at either [`PackedKey`] width.
///
/// Public so key-caching consumers (the flat index searcher) can derive
/// keys from stored permutations; panics are impossible for any valid
/// `Permutation` with `len() ≤ K::MAX_K` in debug (longer inputs
/// silently alias in release — callers dispatch widths first).
pub fn pack_perm<K: PackedKey>(p: &Permutation) -> K {
    debug_assert!(p.len() <= K::MAX_K, "permutation too long for this key width");
    let k = p.len();
    let mut key = K::ZERO;
    for (pos, &site) in p.as_slice().iter().enumerate() {
        // width: position pos goes in group k-1-pos; k ≤ MAX_K groups fit.
        key |= K::from_elem(site) << K::elem_shift(k - 1 - pos);
    }
    key
}

/// Inverse of [`pack_perm`] for a known length `k`.
pub(crate) fn decode_packed<K: PackedKey>(key: K, k: usize) -> Permutation {
    let mut items = [0u8; crate::perm::MAX_K];
    for (pos, slot) in items[..k].iter_mut().enumerate() {
        *slot = key.field(k - 1 - pos);
    }
    Permutation::from_slice(&items[..k]).expect("packed key decodes to a permutation")
}

/// A fixed-universe distinct counter over permutation *ranks*: a bitmap of
/// k! bits.
///
/// For small k (k ≤ 10, so k! ≤ 3,628,800 bits ≈ 450 KB) this is an exact
/// alternative to the hash-set counter with zero per-insert allocation and
/// perfect cache behaviour on dense universes — the ablation benchmark
/// `counting_strategies` compares the two.
#[derive(Debug, Clone)]
pub struct RankBitmap {
    k: usize,
    words: Vec<u64>,
    distinct: usize,
    total: u64,
}

impl RankBitmap {
    /// Creates a bitmap counter for permutations of length `k`.
    ///
    /// # Panics
    /// Panics if `k > 12` (12! bits = 57 MB is the sensible ceiling).
    pub fn new(k: usize) -> Self {
        assert!(k <= 12, "k = {k}: k! bitmap would exceed memory budget");
        let universe = crate::lehmer::factorial(k) as usize;
        Self { k, words: vec![0u64; universe.div_ceil(64)], distinct: 0, total: 0 }
    }

    /// Records one occurrence of `p`.
    ///
    /// # Panics
    /// Panics if `p.len() != k`.
    pub fn insert(&mut self, p: &Permutation) {
        assert_eq!(p.len(), self.k, "permutation length mismatch");
        let r = crate::lehmer::rank(p) as usize;
        let (word, bit) = (r / 64, r % 64);
        if self.words[word] & (1 << bit) == 0 {
            self.words[word] |= 1 << bit;
            self.distinct += 1;
        }
        self.total += 1;
    }

    /// Number of distinct permutations seen.
    pub fn distinct(&self) -> usize {
        self.distinct
    }

    /// Total insertions.
    pub fn total(&self) -> u64 {
        self.total
    }
}

/// Counts the distinct distance permutations of `database` w.r.t. `sites`.
///
/// The headline operation of the paper: |{Π_y : y ∈ database}|.
pub fn count_distinct<P, M: Metric<P>>(metric: &M, sites: &[P], database: &[P]) -> usize {
    collect_counter(metric, sites, database).distinct()
}

/// Runs the full scan and returns the counter (distinct count + occupancy).
pub fn collect_counter<P, M: Metric<P>>(
    metric: &M,
    sites: &[P],
    database: &[P],
) -> PermutationCounter {
    let mut computer = DistPermComputer::new(sites.len());
    let mut counter = PermutationCounter::new();
    for y in database {
        counter.insert(computer.compute(metric, sites, y));
    }
    counter
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_metric::L2;

    #[test]
    fn counter_basics() {
        let mut c = PermutationCounter::new();
        let a = Permutation::identity(3);
        let b = Permutation::from_slice(&[1, 0, 2]).unwrap();
        c.insert(a);
        c.insert(a);
        c.insert(b);
        assert_eq!(c.distinct(), 2);
        assert_eq!(c.total(), 3);
        assert!((c.mean_occupancy() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_counter() {
        let c = PermutationCounter::new();
        assert_eq!(c.distinct(), 0);
        assert_eq!(c.total(), 0);
        assert_eq!(c.mean_occupancy(), 0.0);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = PermutationCounter::new();
        let mut b = PermutationCounter::new();
        let p = Permutation::identity(2);
        let q = Permutation::from_slice(&[1, 0]).unwrap();
        a.insert(p);
        b.insert(p);
        b.insert(q);
        a.merge(&b);
        assert_eq!(a.distinct(), 2);
        assert_eq!(a.total(), 3);
        let pc = a.iter().find(|(x, _)| **x == p).map(|(_, c)| *c);
        assert_eq!(pc, Some(2));
    }

    #[test]
    fn one_dimensional_two_sites_yields_two_permutations() {
        // Sites at 0 and 1; the bisector is the midpoint 0.5: points left
        // of it see [0,1], points right see [1,0].
        let sites = vec![vec![0.0], vec![1.0]];
        let db: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 50.0 - 0.5]).collect();
        assert_eq!(count_distinct(&L2, &sites, &db), 2);
    }

    #[test]
    fn one_dimensional_count_bounded_by_theorem() {
        // N_{1,2}(k) = C(k,2) + 1. With k=4 sites on a line, at most 7.
        let sites: Vec<Vec<f64>> = vec![vec![0.0], vec![0.3], vec![0.55], vec![1.0]];
        let db: Vec<Vec<f64>> = (0..2000).map(|i| vec![i as f64 / 1000.0 - 0.5]).collect();
        let n = count_distinct(&L2, &sites, &db);
        assert!(n <= 7, "got {n} > C(4,2)+1");
        assert_eq!(n, 7, "a dense 1-D sweep should realise all cells");
    }

    #[test]
    fn occupancy_histogram_and_mode() {
        let mut c = PermutationCounter::new();
        let a = Permutation::identity(3);
        let b = Permutation::from_slice(&[1, 0, 2]).unwrap();
        let d = Permutation::from_slice(&[2, 1, 0]).unwrap();
        for _ in 0..3 {
            c.insert(a);
        }
        c.insert(b);
        c.insert(d);
        // Two permutations seen once, one seen three times.
        assert_eq!(c.occupancy_histogram(), vec![2, 0, 1]);
        assert_eq!(c.mode(), Some((a, 3)));
        let empty = PermutationCounter::new();
        assert!(empty.occupancy_histogram().is_empty());
        assert_eq!(empty.mode(), None);
    }

    #[test]
    fn rank_bitmap_matches_hash_counter() {
        let sites = vec![vec![0.0, 0.3], vec![0.9, 0.1], vec![0.5, 0.8], vec![0.2, 0.9]];
        let db: Vec<Vec<f64>> =
            (0..800).map(|i| vec![(i % 40) as f64 / 40.0, (i / 40) as f64 / 20.0]).collect();
        let counter = collect_counter(&L2, &sites, &db);
        let mut bitmap = RankBitmap::new(4);
        let mut computer = crate::compute::DistPermComputer::new(4);
        for y in &db {
            bitmap.insert(&computer.compute(&L2, &sites, y));
        }
        assert_eq!(bitmap.distinct(), counter.distinct());
        assert_eq!(bitmap.total(), counter.total());
    }

    #[test]
    fn rank_bitmap_counts_duplicates_once() {
        let mut bm = RankBitmap::new(3);
        let p = Permutation::identity(3);
        bm.insert(&p);
        bm.insert(&p);
        assert_eq!(bm.distinct(), 1);
        assert_eq!(bm.total(), 2);
    }

    #[test]
    #[should_panic(expected = "memory budget")]
    fn rank_bitmap_rejects_large_k() {
        let _ = RankBitmap::new(13);
    }

    #[test]
    fn packed_summary_iter_matches_hash_counter() {
        let mut packed = PackedPermutationCounter::<u64>::new(3);
        let mut hash = PermutationCounter::new();
        let perms = [
            Permutation::identity(3),
            Permutation::from_slice(&[1, 0, 2]).unwrap(),
            Permutation::from_slice(&[2, 1, 0]).unwrap(),
        ];
        for (i, p) in perms.iter().enumerate() {
            for _ in 0..=i {
                packed.insert(p);
                hash.insert(*p);
            }
        }
        let summary = packed.finalize();
        let mut pairs: Vec<(Permutation, u64)> = summary.iter().collect();
        pairs.sort_unstable();
        let mut expected: Vec<(Permutation, u64)> = hash.iter().map(|(&p, &c)| (p, c)).collect();
        expected.sort_unstable();
        assert_eq!(pairs, expected);
        // Counts align with the decoded permutations, not just the totals.
        assert_eq!(summary.iter().map(|(_, c)| c).sum::<u64>(), summary.total());
        assert!(PackedPermutationCounter::<u64>::new(2).finalize().iter().next().is_none());
    }

    #[test]
    fn lexicographic_counts_match_permutation_sorted_pairs() {
        // Fill a packed counter with an irregular multiset of k = 4
        // permutations covering every tie of first vs last position.
        let mut packed = PackedPermutationCounter::<u64>::new(4);
        let perms: Vec<Permutation> =
            [[0u8, 1, 2, 3], [0, 1, 3, 2], [3, 0, 1, 2], [1, 0, 2, 3], [3, 2, 1, 0], [0, 2, 1, 3]]
                .iter()
                .map(|s| Permutation::from_slice(s).unwrap())
                .collect();
        for (i, p) in perms.iter().enumerate() {
            for _ in 0..(7 - i) {
                packed.insert(p);
            }
        }
        let summary = packed.finalize();
        let mut pairs: Vec<(Permutation, u64)> = summary.iter().collect();
        pairs.sort_unstable_by_key(|&(p, _)| p);
        let expected: Vec<u64> = pairs.into_iter().map(|(_, c)| c).collect();
        assert_eq!(summary.lexicographic_counts(), expected);
    }

    #[test]
    fn sorted_permutations_is_sorted_and_complete() {
        let sites = vec![vec![0.0], vec![0.4], vec![1.0]];
        let db: Vec<Vec<f64>> = (0..500).map(|i| vec![i as f64 / 250.0 - 0.5]).collect();
        let counter = collect_counter(&L2, &sites, &db);
        let sorted = counter.sorted_permutations();
        assert_eq!(sorted.len(), counter.distinct());
        assert!(sorted.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn count_sorted_runs_examples() {
        assert_eq!(count_sorted_runs::<u64>(&[]), Vec::<u64>::new());
        assert_eq!(count_sorted_runs(&[5]), vec![1]);
        assert_eq!(count_sorted_runs(&[3, 3, 3, 7, 9, 9]), vec![3, 1, 2]);
        assert_eq!(count_sorted_runs(&[1, 2, 3]), vec![1, 1, 1]);
        assert_eq!(count_sorted_runs(&[4u8; 100]), vec![100]);
    }

    #[test]
    fn count_sorted_runs_matches_finalize_occupancies() {
        let mut keys: Vec<u64> = (0..500u64).map(|i| i.wrapping_mul(0x9E37) % 37).collect();
        keys.sort_unstable();
        let runs = count_sorted_runs(&keys);
        assert_eq!(runs.iter().sum::<u64>(), 500);
        assert_eq!(runs.len(), 37.min(keys.len()));
    }

    #[test]
    fn sorted_counts_matches_sorted_permutations_and_counts() {
        let sites = vec![vec![0.0, 0.3], vec![0.9, 0.1], vec![0.5, 0.8], vec![0.2, 0.9]];
        let db: Vec<Vec<f64>> =
            (0..900).map(|i| vec![(i % 30) as f64 / 30.0, (i / 30) as f64 / 30.0]).collect();
        let counter = collect_counter(&L2, &sites, &db);
        let pairs = counter.sorted_counts();
        let perms: Vec<Permutation> = pairs.iter().map(|&(p, _)| p).collect();
        assert_eq!(perms, counter.sorted_permutations());
        for (p, c) in &pairs {
            let direct = counter.iter().find(|(q, _)| *q == p).map(|(_, &c)| c);
            assert_eq!(direct, Some(*c));
        }
        assert!(PermutationCounter::new().sorted_counts().is_empty());
    }

    #[test]
    fn sorted_counts_mixed_lengths_fall_back_to_comparison_order() {
        let mut c = PermutationCounter::new();
        c.insert(Permutation::identity(3));
        c.insert(Permutation::identity(2));
        c.insert(Permutation::from_slice(&[1, 0]).unwrap());
        let pairs = c.sorted_counts();
        let perms: Vec<Permutation> = pairs.iter().map(|&(p, _)| p).collect();
        assert_eq!(perms, c.sorted_permutations());
    }

    #[test]
    fn packed_key_order_is_lexicographic() {
        // Integer order on pack_perm keys must equal Permutation order —
        // the invariant lexicographic_counts and the codebooks lean on.
        let k = 4usize;
        let mut perms: Vec<Permutation> = Vec::new();
        for a in 0..k as u8 {
            for b in 0..k as u8 {
                for c in 0..k as u8 {
                    for d in 0..k as u8 {
                        if let Ok(p) = Permutation::from_slice(&[a, b, c, d]) {
                            perms.push(p);
                        }
                    }
                }
            }
        }
        let mut by_perm = perms.clone();
        by_perm.sort_unstable();
        let mut by_key = perms;
        by_key.sort_unstable_by_key(pack_perm::<u64>);
        assert_eq!(by_perm, by_key);
    }

    #[test]
    fn wide_pack_decode_round_trips() {
        // k = 25 exercises fields strictly above bit 64.
        let items: Vec<u8> = (0..25u8).rev().collect();
        let p = Permutation::from_slice(&items).unwrap();
        let key: u128 = pack_perm(&p);
        assert!(key >> 64 != 0, "high word must be populated");
        assert_eq!(decode_packed(key, 25), p);
    }

    #[test]
    fn wide_packed_counter_matches_hash_counter() {
        // An irregular multiset of k = 20 permutations.
        let k = 20usize;
        let mut packed: PackedPermutationCounter<u128> = PackedPermutationCounter::new(k);
        let mut hash = PermutationCounter::new();
        let mut items: Vec<u8> = (0..k as u8).collect();
        for round in 0..600usize {
            // Deterministic Fisher–Yates from a splitmix-style stream.
            let mut state = round as u64 % 37;
            for i in (1..k).rev() {
                state = state.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0x1234_5678);
                items.swap(i, (state >> 33) as usize % (i + 1));
            }
            let p = Permutation::from_slice(&items).unwrap();
            packed.insert(&p);
            hash.insert(p);
        }
        let summary = packed.finalize();
        assert_eq!(summary.distinct(), hash.distinct());
        assert_eq!(summary.total(), hash.total());
        assert_eq!(summary.mean_occupancy().to_bits(), hash.mean_occupancy().to_bits());
        // Lexicographic frequency tables agree element for element.
        let expected: Vec<u64> = hash.sorted_counts().into_iter().map(|(_, c)| c).collect();
        assert_eq!(summary.lexicographic_counts(), expected);
        // Decoded permutations agree with the hash counter's sorted set.
        let mut decoded = summary.permutations();
        decoded.sort_unstable();
        assert_eq!(decoded, hash.sorted_permutations());
    }

    #[test]
    fn sorted_counts_uses_radix_above_the_u64_seam() {
        // k = 14 permutations take the u128 radix arm of sorted_counts;
        // the output must equal the comparison-sort arm's.
        let mut c = PermutationCounter::new();
        let mut items: Vec<u8> = (0..14u8).collect();
        for round in 0..300usize {
            items.rotate_left(round % 14);
            if round % 3 == 0 {
                items.swap(0, 7);
            }
            c.insert(Permutation::from_slice(&items).unwrap());
        }
        let radix = c.sorted_counts();
        let expected = c.sorted_counts_cmp();
        assert_eq!(radix, expected);
        let perms: Vec<Permutation> = radix.iter().map(|&(p, _)| p).collect();
        assert_eq!(perms, c.sorted_permutations());
    }
}
