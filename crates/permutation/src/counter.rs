//! Counting distinct distance permutations.
//!
//! This is the measurement the paper's experiments perform: enumerate the
//! distance permutation of every database element and count the distinct
//! values (`sort | uniq | wc` over the SISAP `build-distperm-*` output, §5).
//! Two counters implement it:
//!
//! * [`PermutationCounter`] — an Fx-hashed multiset for arbitrary k and
//!   point streams; also tracks occupancy (how many elements map to each
//!   permutation), which Table 2's analysis uses ("about 10 database
//!   points per permutation").
//! * [`PackedPermutationCounter`] — the sorted-run pipeline behind the
//!   flat engine: inserts append a packed u64 key, [`finalize`]
//!   (radix-)sorts the buffer once and [`count_sorted_runs`] turns the
//!   sorted runs into occupancies.  No hashing anywhere on the hot path.
//!
//! [`finalize`]: PackedPermutationCounter::finalize

use crate::compute::DistPermComputer;
use crate::fxhash::FxHashMap;
use crate::perm::Permutation;
use crate::radix::RadixSorter;
use dp_metric::Metric;

/// Run lengths of consecutive equal values in a sorted (or at least
/// run-grouped) slice: `[3, 3, 3, 7, 9, 9]` → `[3, 1, 2]`.
///
/// The shared scan under every sort-then-dedup consumer in this crate —
/// [`PackedPermutationCounter::finalize`] derives occupancies from it,
/// [`PermutationCounter::sorted_counts`] collapses its sorted key stream
/// with it, and the flat codebooks in [`crate::encoding`] locate run
/// starts through it.
pub fn count_sorted_runs<T: PartialEq>(sorted: &[T]) -> Vec<u64> {
    let mut runs = Vec::new();
    let mut start = 0usize;
    for i in 1..sorted.len() {
        if sorted[i] != sorted[start] {
            runs.push((i - start) as u64);
            start = i;
        }
    }
    if start < sorted.len() {
        runs.push((sorted.len() - start) as u64);
    }
    runs
}

/// Accumulates distance permutations and distinct-count statistics.
#[derive(Debug, Clone, Default)]
pub struct PermutationCounter {
    counts: FxHashMap<Permutation, u64>,
    total: u64,
}

impl PermutationCounter {
    /// An empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one occurrence of `p`.
    pub fn insert(&mut self, p: Permutation) {
        *self.counts.entry(p).or_insert(0) += 1;
        self.total += 1;
    }

    /// Number of distinct permutations observed.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean occupancy: observations per distinct permutation.
    pub fn mean_occupancy(&self) -> f64 {
        if self.counts.is_empty() {
            0.0
        } else {
            self.total as f64 / self.counts.len() as f64
        }
    }

    /// Iterator over `(permutation, occurrence count)`.
    pub fn iter(&self) -> impl Iterator<Item = (&Permutation, &u64)> {
        self.counts.iter()
    }

    /// The observed permutations, sorted lexicographically — a stable order
    /// for codebook assignment and for diffing against other runs.
    pub fn sorted_permutations(&self) -> Vec<Permutation> {
        let mut v: Vec<Permutation> = self.counts.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// `(permutation, occurrence count)` pairs sorted lexicographically —
    /// the order a codebook built from [`Self::sorted_permutations`]
    /// assigns ids in, so mapping this to its counts *is* the frequency
    /// table both survey engines emit.
    ///
    /// For a uniform permutation length `k ≤ PACKED_MAX_K` the sort runs
    /// as a radix sort over group-reversed packed keys (no `Permutation`
    /// is compared); mixed or longer lengths fall back to a comparison
    /// sort with identical output.
    pub fn sorted_counts(&self) -> Vec<(Permutation, u64)> {
        let uniform_k = self.counts.keys().next().map(super::perm::Permutation::len).filter(|&k| {
            k <= crate::compute::PACKED_MAX_K && self.counts.keys().all(|p| p.len() == k)
        });
        if let Some(k) = uniform_k {
            let mut pairs: Vec<(u64, u64)> =
                self.counts.iter().map(|(p, &c)| (lex_key(p, k), c)).collect();
            RadixSorter::new().sort_pairs(&mut pairs, 5 * k as u32);
            pairs.into_iter().map(|(key, c)| (decode_lex_key(key, k), c)).collect()
        } else {
            let mut v: Vec<(Permutation, u64)> =
                self.counts.iter().map(|(&p, &c)| (p, c)).collect();
            v.sort_unstable_by_key(|&(p, _)| p);
            v
        }
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: &PermutationCounter) {
        for (&p, &c) in other.counts.iter() {
            *self.counts.entry(p).or_insert(0) += c;
        }
        self.total += other.total;
    }

    /// Occupancy histogram: `histogram[i]` = number of permutations seen
    /// exactly `i+1` times (Fig 7's "cells the database happens to miss"
    /// analysis looks at the other side of this distribution).
    pub fn occupancy_histogram(&self) -> Vec<u64> {
        let max = self.counts.values().copied().max().unwrap_or(0) as usize;
        let mut hist = vec![0u64; max];
        for &c in self.counts.values() {
            hist[(c - 1) as usize] += 1;
        }
        hist
    }

    /// The most heavily occupied permutation and its count.
    pub fn mode(&self) -> Option<(Permutation, u64)> {
        self.counts.iter().map(|(&p, &c)| (p, c)).max_by_key(|&(p, c)| (c, std::cmp::Reverse(p)))
    }
}

/// Occurrence counter keyed on packed u64 permutation codes
/// (5 bits per element, so k ≤ [`crate::compute::PACKED_MAX_K`]).
///
/// The fast engine behind flat counting.  Inserts only append to a key
/// buffer (no hashing, no per-insert cache miss — crucial when most
/// permutations are distinct and a hash table would take a DRAM miss per
/// probe); distinct-counting happens once, in [`Self::finalize`], as a
/// cache-friendly sort + run scan.  Packing is injective, so the distinct
/// count equals the distinct count of the underlying permutations
/// exactly.
#[derive(Debug, Clone)]
pub struct PackedPermutationCounter {
    k: usize,
    keys: Vec<u64>,
}

impl PackedPermutationCounter {
    /// An empty counter for permutations of length `k`.
    ///
    /// # Panics
    /// Panics if `k > PACKED_MAX_K`.
    pub fn new(k: usize) -> Self {
        assert!(
            k <= crate::compute::PACKED_MAX_K,
            "k = {k} exceeds PACKED_MAX_K = {}",
            crate::compute::PACKED_MAX_K
        );
        Self { k, keys: Vec::new() }
    }

    /// Permutation length k.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Records one occurrence of a packed key (element at position `p`
    /// in bits `5p..5p+5`).
    #[inline]
    pub fn insert_key(&mut self, key: u64) {
        self.keys.push(key);
    }

    /// Records one occurrence of a permutation value.
    ///
    /// # Panics
    /// Panics if `p.len() != k`.
    pub fn insert(&mut self, p: &Permutation) {
        assert_eq!(p.len(), self.k, "permutation length mismatch");
        self.insert_key(pack_perm(p));
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.keys.len() as u64
    }

    /// Sorts the key buffer (LSD radix over the `5·k` significant bits)
    /// and produces the summary statistics.
    ///
    /// Allocates one scratch buffer; loops that finalize repeatedly
    /// should reuse a sorter through [`Self::finalize_with`].
    pub fn finalize(self) -> PackedCountSummary {
        self.finalize_with(&mut RadixSorter::new())
    }

    /// [`Self::finalize`] through a caller-owned [`RadixSorter`], so
    /// repeated finalizes (the per-k survey loop) share one scratch
    /// buffer instead of reallocating.
    pub fn finalize_with(mut self, sorter: &mut RadixSorter) -> PackedCountSummary {
        sorter.sort_keys(&mut self.keys, 5 * self.k as u32);
        let occupancies = count_sorted_runs(&self.keys);
        PackedCountSummary { k: self.k, keys: self.keys, occupancies }
    }

    /// Wraps an already-collected key buffer (the batched scans build the
    /// buffer directly and only then enter counter land).
    ///
    /// # Panics
    /// Panics if `k > PACKED_MAX_K`.
    pub(crate) fn from_keys(k: usize, keys: Vec<u64>) -> Self {
        let mut c = Self::new(k);
        c.keys = keys;
        c
    }

    /// The raw key buffer, consumed (sorted only if the collector sorted
    /// it — [`Self::finalize`] handles either state).
    pub(crate) fn into_keys(self) -> Vec<u64> {
        self.keys
    }

    /// Radix-sorts the key buffer in place now, so a later
    /// [`Self::finalize`] hits the sorted fast path — the parallel
    /// collectors sort per-chunk buffers inside their workers and merge
    /// the sorted runs.
    pub(crate) fn sort_keys(&mut self, sorter: &mut RadixSorter) {
        sorter.sort_keys(&mut self.keys, 5 * self.k as u32);
    }
}

/// Packs a permutation into its **lexicographic** u64 key: position 0 in
/// the most significant 5-bit group, so u64 order coincides with
/// [`Permutation`] order at fixed length.
fn lex_key(p: &Permutation, k: usize) -> u64 {
    group_reverse(pack_perm(p), k)
}

/// Reverses the 5-bit groups of a packed key: packed order (position 0
/// least significant) → lexicographic order (position 0 most
/// significant).  A u64 permutation of bit groups — no decode.
pub(crate) fn group_reverse(key: u64, k: usize) -> u64 {
    let mut lex = 0u64;
    for p in 0..k {
        lex |= ((key >> (5 * p)) & 0x1F) << (5 * (k - 1 - p));
    }
    lex
}

/// Inverse of [`lex_key`].
fn decode_lex_key(key: u64, k: usize) -> Permutation {
    decode_packed(group_reverse(key, k), k)
}

/// Finalized statistics of a [`PackedPermutationCounter`].
#[derive(Debug, Clone)]
pub struct PackedCountSummary {
    k: usize,
    keys: Vec<u64>,
    occupancies: Vec<u64>,
}

impl PackedCountSummary {
    /// Number of distinct permutations observed.
    pub fn distinct(&self) -> usize {
        self.occupancies.len()
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.keys.len() as u64
    }

    /// Mean occupancy: observations per distinct permutation.
    pub fn mean_occupancy(&self) -> f64 {
        if self.occupancies.is_empty() {
            0.0
        } else {
            self.total() as f64 / self.distinct() as f64
        }
    }

    /// Permutation length k.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The distinct permutations, decoded, sorted by packed key.
    pub fn permutations(&self) -> Vec<Permutation> {
        self.distinct_keys().map(|key| self.decode(key)).collect()
    }

    /// The distinct packed keys in sorted (packed) order — one run start
    /// per occupancy entry.
    pub fn distinct_keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.occupancies.iter().scan(0usize, move |pos, &count| {
            let key = self.keys[*pos];
            *pos += count as usize;
            Some(key)
        })
    }

    /// Iterator over `(permutation, occurrence count)`, in packed-key
    /// order.  The counterpart of [`PermutationCounter::iter`] — the
    /// flat survey path uses it to recover the occupancy distribution
    /// without re-hashing every observation.
    pub fn iter(&self) -> impl Iterator<Item = (Permutation, u64)> + '_ {
        self.occupancies.iter().scan(0usize, move |pos, &count| {
            let key = self.keys[*pos];
            *pos += count as usize;
            Some((self.decode(key), count))
        })
    }

    /// Occurrence counts ordered by the **lexicographic** rank of each
    /// distinct permutation — the order a codebook built from
    /// [`PermutationCounter::sorted_permutations`] assigns ids in, so a
    /// frequency table built from this vector is element-for-element
    /// identical to the hash-counter path's.
    ///
    /// Packed keys sort by the *last* position first (position `p` lives
    /// in bits `5p..5p+5`), so this re-sorts by the group-reversed key
    /// (position 0 most significant) — a u64 sort, no permutation is
    /// decoded or compared.
    pub fn lexicographic_counts(&self) -> Vec<u64> {
        self.lexicographic_counts_with(&mut RadixSorter::new())
    }

    /// [`Self::lexicographic_counts`] through a caller-owned
    /// [`RadixSorter`] (the survey loop reuses the finalize scratch).
    pub fn lexicographic_counts_with(&self, sorter: &mut RadixSorter) -> Vec<u64> {
        let mut pos = 0usize;
        let mut by_lex: Vec<(u64, u64)> = self
            .occupancies
            .iter()
            .map(|&count| {
                let key = self.keys[pos];
                pos += count as usize;
                (group_reverse(key, self.k), count)
            })
            .collect();
        sorter.sort_pairs(&mut by_lex, 5 * self.k as u32);
        by_lex.into_iter().map(|(_, c)| c).collect()
    }

    /// Expands into an ordinary [`PermutationCounter`] (same counts).
    pub fn unpack(&self) -> PermutationCounter {
        let mut out = PermutationCounter::new();
        for &key in &self.keys {
            out.insert(self.decode(key));
        }
        out
    }

    fn decode(&self, key: u64) -> Permutation {
        decode_packed(key, self.k)
    }
}

/// Packs a permutation into the 5-bits-per-element u64 key (position `p`
/// in bits `5p..5p+5`) — the [`PackedPermutationCounter`] key layout.
pub(crate) fn pack_perm(p: &Permutation) -> u64 {
    let mut key = 0u64;
    for (pos, &site) in p.as_slice().iter().enumerate() {
        key |= u64::from(site) << (5 * pos);
    }
    key
}

/// Inverse of [`pack_perm`] for a known length `k`.
pub(crate) fn decode_packed(key: u64, k: usize) -> Permutation {
    let mut items = [0u8; crate::perm::MAX_K];
    for (pos, slot) in items[..k].iter_mut().enumerate() {
        *slot = ((key >> (5 * pos)) & 0x1F) as u8;
    }
    Permutation::from_slice(&items[..k]).expect("packed key decodes to a permutation")
}

/// A fixed-universe distinct counter over permutation *ranks*: a bitmap of
/// k! bits.
///
/// For small k (k ≤ 10, so k! ≤ 3,628,800 bits ≈ 450 KB) this is an exact
/// alternative to the hash-set counter with zero per-insert allocation and
/// perfect cache behaviour on dense universes — the ablation benchmark
/// `counting_strategies` compares the two.
#[derive(Debug, Clone)]
pub struct RankBitmap {
    k: usize,
    words: Vec<u64>,
    distinct: usize,
    total: u64,
}

impl RankBitmap {
    /// Creates a bitmap counter for permutations of length `k`.
    ///
    /// # Panics
    /// Panics if `k > 12` (12! bits = 57 MB is the sensible ceiling).
    pub fn new(k: usize) -> Self {
        assert!(k <= 12, "k = {k}: k! bitmap would exceed memory budget");
        let universe = crate::lehmer::factorial(k) as usize;
        Self { k, words: vec![0u64; universe.div_ceil(64)], distinct: 0, total: 0 }
    }

    /// Records one occurrence of `p`.
    ///
    /// # Panics
    /// Panics if `p.len() != k`.
    pub fn insert(&mut self, p: &Permutation) {
        assert_eq!(p.len(), self.k, "permutation length mismatch");
        let r = crate::lehmer::rank(p) as usize;
        let (word, bit) = (r / 64, r % 64);
        if self.words[word] & (1 << bit) == 0 {
            self.words[word] |= 1 << bit;
            self.distinct += 1;
        }
        self.total += 1;
    }

    /// Number of distinct permutations seen.
    pub fn distinct(&self) -> usize {
        self.distinct
    }

    /// Total insertions.
    pub fn total(&self) -> u64 {
        self.total
    }
}

/// Counts the distinct distance permutations of `database` w.r.t. `sites`.
///
/// The headline operation of the paper: |{Π_y : y ∈ database}|.
pub fn count_distinct<P, M: Metric<P>>(metric: &M, sites: &[P], database: &[P]) -> usize {
    collect_counter(metric, sites, database).distinct()
}

/// Runs the full scan and returns the counter (distinct count + occupancy).
pub fn collect_counter<P, M: Metric<P>>(
    metric: &M,
    sites: &[P],
    database: &[P],
) -> PermutationCounter {
    let mut computer = DistPermComputer::new(sites.len());
    let mut counter = PermutationCounter::new();
    for y in database {
        counter.insert(computer.compute(metric, sites, y));
    }
    counter
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_metric::L2;

    #[test]
    fn counter_basics() {
        let mut c = PermutationCounter::new();
        let a = Permutation::identity(3);
        let b = Permutation::from_slice(&[1, 0, 2]).unwrap();
        c.insert(a);
        c.insert(a);
        c.insert(b);
        assert_eq!(c.distinct(), 2);
        assert_eq!(c.total(), 3);
        assert!((c.mean_occupancy() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_counter() {
        let c = PermutationCounter::new();
        assert_eq!(c.distinct(), 0);
        assert_eq!(c.total(), 0);
        assert_eq!(c.mean_occupancy(), 0.0);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = PermutationCounter::new();
        let mut b = PermutationCounter::new();
        let p = Permutation::identity(2);
        let q = Permutation::from_slice(&[1, 0]).unwrap();
        a.insert(p);
        b.insert(p);
        b.insert(q);
        a.merge(&b);
        assert_eq!(a.distinct(), 2);
        assert_eq!(a.total(), 3);
        let pc = a.iter().find(|(x, _)| **x == p).map(|(_, c)| *c);
        assert_eq!(pc, Some(2));
    }

    #[test]
    fn one_dimensional_two_sites_yields_two_permutations() {
        // Sites at 0 and 1; the bisector is the midpoint 0.5: points left
        // of it see [0,1], points right see [1,0].
        let sites = vec![vec![0.0], vec![1.0]];
        let db: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 50.0 - 0.5]).collect();
        assert_eq!(count_distinct(&L2, &sites, &db), 2);
    }

    #[test]
    fn one_dimensional_count_bounded_by_theorem() {
        // N_{1,2}(k) = C(k,2) + 1. With k=4 sites on a line, at most 7.
        let sites: Vec<Vec<f64>> = vec![vec![0.0], vec![0.3], vec![0.55], vec![1.0]];
        let db: Vec<Vec<f64>> = (0..2000).map(|i| vec![i as f64 / 1000.0 - 0.5]).collect();
        let n = count_distinct(&L2, &sites, &db);
        assert!(n <= 7, "got {n} > C(4,2)+1");
        assert_eq!(n, 7, "a dense 1-D sweep should realise all cells");
    }

    #[test]
    fn occupancy_histogram_and_mode() {
        let mut c = PermutationCounter::new();
        let a = Permutation::identity(3);
        let b = Permutation::from_slice(&[1, 0, 2]).unwrap();
        let d = Permutation::from_slice(&[2, 1, 0]).unwrap();
        for _ in 0..3 {
            c.insert(a);
        }
        c.insert(b);
        c.insert(d);
        // Two permutations seen once, one seen three times.
        assert_eq!(c.occupancy_histogram(), vec![2, 0, 1]);
        assert_eq!(c.mode(), Some((a, 3)));
        let empty = PermutationCounter::new();
        assert!(empty.occupancy_histogram().is_empty());
        assert_eq!(empty.mode(), None);
    }

    #[test]
    fn rank_bitmap_matches_hash_counter() {
        let sites = vec![vec![0.0, 0.3], vec![0.9, 0.1], vec![0.5, 0.8], vec![0.2, 0.9]];
        let db: Vec<Vec<f64>> =
            (0..800).map(|i| vec![(i % 40) as f64 / 40.0, (i / 40) as f64 / 20.0]).collect();
        let counter = collect_counter(&L2, &sites, &db);
        let mut bitmap = RankBitmap::new(4);
        let mut computer = crate::compute::DistPermComputer::new(4);
        for y in &db {
            bitmap.insert(&computer.compute(&L2, &sites, y));
        }
        assert_eq!(bitmap.distinct(), counter.distinct());
        assert_eq!(bitmap.total(), counter.total());
    }

    #[test]
    fn rank_bitmap_counts_duplicates_once() {
        let mut bm = RankBitmap::new(3);
        let p = Permutation::identity(3);
        bm.insert(&p);
        bm.insert(&p);
        assert_eq!(bm.distinct(), 1);
        assert_eq!(bm.total(), 2);
    }

    #[test]
    #[should_panic(expected = "memory budget")]
    fn rank_bitmap_rejects_large_k() {
        let _ = RankBitmap::new(13);
    }

    #[test]
    fn packed_summary_iter_matches_hash_counter() {
        let mut packed = PackedPermutationCounter::new(3);
        let mut hash = PermutationCounter::new();
        let perms = [
            Permutation::identity(3),
            Permutation::from_slice(&[1, 0, 2]).unwrap(),
            Permutation::from_slice(&[2, 1, 0]).unwrap(),
        ];
        for (i, p) in perms.iter().enumerate() {
            for _ in 0..=i {
                packed.insert(p);
                hash.insert(*p);
            }
        }
        let summary = packed.finalize();
        let mut pairs: Vec<(Permutation, u64)> = summary.iter().collect();
        pairs.sort_unstable();
        let mut expected: Vec<(Permutation, u64)> = hash.iter().map(|(&p, &c)| (p, c)).collect();
        expected.sort_unstable();
        assert_eq!(pairs, expected);
        // Counts align with the decoded permutations, not just the totals.
        assert_eq!(summary.iter().map(|(_, c)| c).sum::<u64>(), summary.total());
        assert!(PackedPermutationCounter::new(2).finalize().iter().next().is_none());
    }

    #[test]
    fn lexicographic_counts_match_permutation_sorted_pairs() {
        // Fill a packed counter with an irregular multiset of k = 4
        // permutations covering every tie of first vs last position.
        let mut packed = PackedPermutationCounter::new(4);
        let perms: Vec<Permutation> =
            [[0u8, 1, 2, 3], [0, 1, 3, 2], [3, 0, 1, 2], [1, 0, 2, 3], [3, 2, 1, 0], [0, 2, 1, 3]]
                .iter()
                .map(|s| Permutation::from_slice(s).unwrap())
                .collect();
        for (i, p) in perms.iter().enumerate() {
            for _ in 0..(7 - i) {
                packed.insert(p);
            }
        }
        let summary = packed.finalize();
        let mut pairs: Vec<(Permutation, u64)> = summary.iter().collect();
        pairs.sort_unstable_by_key(|&(p, _)| p);
        let expected: Vec<u64> = pairs.into_iter().map(|(_, c)| c).collect();
        assert_eq!(summary.lexicographic_counts(), expected);
    }

    #[test]
    fn sorted_permutations_is_sorted_and_complete() {
        let sites = vec![vec![0.0], vec![0.4], vec![1.0]];
        let db: Vec<Vec<f64>> = (0..500).map(|i| vec![i as f64 / 250.0 - 0.5]).collect();
        let counter = collect_counter(&L2, &sites, &db);
        let sorted = counter.sorted_permutations();
        assert_eq!(sorted.len(), counter.distinct());
        assert!(sorted.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn count_sorted_runs_examples() {
        assert_eq!(count_sorted_runs::<u64>(&[]), Vec::<u64>::new());
        assert_eq!(count_sorted_runs(&[5]), vec![1]);
        assert_eq!(count_sorted_runs(&[3, 3, 3, 7, 9, 9]), vec![3, 1, 2]);
        assert_eq!(count_sorted_runs(&[1, 2, 3]), vec![1, 1, 1]);
        assert_eq!(count_sorted_runs(&[4u8; 100]), vec![100]);
    }

    #[test]
    fn count_sorted_runs_matches_finalize_occupancies() {
        let mut keys: Vec<u64> = (0..500u64).map(|i| i.wrapping_mul(0x9E37) % 37).collect();
        keys.sort_unstable();
        let runs = count_sorted_runs(&keys);
        assert_eq!(runs.iter().sum::<u64>(), 500);
        assert_eq!(runs.len(), 37.min(keys.len()));
    }

    #[test]
    fn sorted_counts_matches_sorted_permutations_and_counts() {
        let sites = vec![vec![0.0, 0.3], vec![0.9, 0.1], vec![0.5, 0.8], vec![0.2, 0.9]];
        let db: Vec<Vec<f64>> =
            (0..900).map(|i| vec![(i % 30) as f64 / 30.0, (i / 30) as f64 / 30.0]).collect();
        let counter = collect_counter(&L2, &sites, &db);
        let pairs = counter.sorted_counts();
        let perms: Vec<Permutation> = pairs.iter().map(|&(p, _)| p).collect();
        assert_eq!(perms, counter.sorted_permutations());
        for (p, c) in &pairs {
            let direct = counter.iter().find(|(q, _)| *q == p).map(|(_, &c)| c);
            assert_eq!(direct, Some(*c));
        }
        assert!(PermutationCounter::new().sorted_counts().is_empty());
    }

    #[test]
    fn sorted_counts_mixed_lengths_fall_back_to_comparison_order() {
        let mut c = PermutationCounter::new();
        c.insert(Permutation::identity(3));
        c.insert(Permutation::identity(2));
        c.insert(Permutation::from_slice(&[1, 0]).unwrap());
        let pairs = c.sorted_counts();
        let perms: Vec<Permutation> = pairs.iter().map(|&(p, _)| p).collect();
        assert_eq!(perms, c.sorted_permutations());
    }

    #[test]
    fn group_reverse_round_trips() {
        for k in [1usize, 5, 12] {
            let key = (0..k as u64).fold(0u64, |acc, p| acc | ((p % 12) << (5 * p)));
            assert_eq!(group_reverse(group_reverse(key, k), k), key, "k = {k}");
        }
    }
}
