//! The compact [`Permutation`] value type.
//!
//! Distance permutations in the paper's experiments never exceed k = 12
//! sites, and the theory sections show the number of *distinct* ones is
//! polynomial in k for fixed dimension — so a fixed-capacity inline array
//! (no heap) is the right representation: O(1) copy, derive-able `Eq` +
//! `Hash` for set membership, and 33 bytes per value.
//!
//! Site indices are **0-based** here (`0..k`), where the paper writes
//! 1-based permutations; [`Permutation::display_one_based`] prints the
//! paper's convention.

use std::fmt;

/// Maximum number of sites supported by the inline representation.
///
/// 32 comfortably exceeds any practical distance-permutation index (the
/// paper's experiments stop at k = 12; beyond k ≈ 2d the permutations carry
/// little extra information, §4) while keeping the type a cheap `Copy`.
pub const MAX_K: usize = 32;

/// Errors from permutation construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PermutationError {
    /// More than [`MAX_K`] elements.
    TooLong(usize),
    /// An element out of range or repeated.
    NotAPermutation,
}

impl fmt::Display for PermutationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PermutationError::TooLong(k) => {
                write!(f, "permutation length {k} exceeds MAX_K = {MAX_K}")
            }
            PermutationError::NotAPermutation => {
                write!(f, "elements are not a permutation of 0..k")
            }
        }
    }
}

impl std::error::Error for PermutationError {}

/// A permutation of `0..k` for `k <= MAX_K`, stored inline.
///
/// Unused trailing slots are zeroed so the derived `Eq`/`Hash`/`Ord` are
/// well defined.  `Ord` sorts by length first, then lexicographically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Permutation {
    len: u8,
    items: [u8; MAX_K],
}

impl Permutation {
    /// The identity permutation `0, 1, …, k-1`.
    ///
    /// # Panics
    /// Panics if `k > MAX_K`.
    pub fn identity(k: usize) -> Self {
        assert!(k <= MAX_K, "k = {k} exceeds MAX_K = {MAX_K}");
        let mut items = [0u8; MAX_K];
        for (i, slot) in items.iter_mut().take(k).enumerate() {
            *slot = i as u8;
        }
        Self { len: k as u8, items }
    }

    /// Builds a permutation from a slice of 0-based elements, validating it.
    pub fn from_slice(elements: &[u8]) -> Result<Self, PermutationError> {
        let k = elements.len();
        if k > MAX_K {
            return Err(PermutationError::TooLong(k));
        }
        let mut seen = 0u32;
        for &e in elements {
            if (e as usize) >= k || seen & (1 << e) != 0 {
                return Err(PermutationError::NotAPermutation);
            }
            seen |= 1 << e;
        }
        let mut items = [0u8; MAX_K];
        items[..k].copy_from_slice(elements);
        Ok(Self { len: k as u8, items })
    }

    /// Builds a permutation from pre-validated elements.
    ///
    /// # Panics
    /// Debug-asserts validity; intended for internal hot paths that have
    /// just produced a valid ordering (e.g. a sort of `0..k`).
    pub(crate) fn from_sorted_indices(elements: &[u8]) -> Self {
        debug_assert!(Self::from_slice(elements).is_ok());
        let mut items = [0u8; MAX_K];
        items[..elements.len()].copy_from_slice(elements);
        Self { len: elements.len() as u8, items }
    }

    /// Number of elements k.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True iff k = 0 (the empty permutation).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The elements as a slice (0-based site indices, nearest first).
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.items[..self.len as usize]
    }

    /// The element at rank `i` (the i-th closest site), 0-based.
    #[inline]
    pub fn get(&self, i: usize) -> u8 {
        self.as_slice()[i]
    }

    /// The inverse permutation: `inv[e] = position of e in self`.
    pub fn inverse(&self) -> Self {
        let mut items = [0u8; MAX_K];
        for (pos, &e) in self.as_slice().iter().enumerate() {
            items[e as usize] = pos as u8;
        }
        Self { len: self.len, items }
    }

    /// Position (rank) of element `e`, i.e. how many sites are closer.
    ///
    /// O(k) scan; for repeated lookups take [`Self::inverse`] once.
    pub fn position_of(&self, e: u8) -> Option<usize> {
        self.as_slice().iter().position(|&x| x == e)
    }

    /// Composition `self ∘ other`: `(self ∘ other)(i) = self[other[i]]`.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn compose(&self, other: &Self) -> Self {
        assert_eq!(self.len, other.len, "composing permutations of different length");
        let mut items = [0u8; MAX_K];
        for (i, &o) in other.as_slice().iter().enumerate() {
            items[i] = self.items[o as usize];
        }
        Self { len: self.len, items }
    }

    /// Advances to the next permutation in lexicographic order, returning
    /// `false` (and resetting to identity) after the last one.
    ///
    /// This is the allocation-free enumeration used by the theory tests to
    /// sweep all k! permutations.
    pub fn next_lex(&mut self) -> bool {
        let k = self.len as usize;
        let a = &mut self.items[..k];
        if k < 2 {
            return false;
        }
        // Find the longest non-increasing suffix.
        let mut i = k - 1;
        while i > 0 && a[i - 1] >= a[i] {
            i -= 1;
        }
        if i == 0 {
            a.sort_unstable();
            return false;
        }
        // Swap pivot with the rightmost element exceeding it, reverse suffix.
        let pivot = a[i - 1];
        let mut j = k - 1;
        while a[j] <= pivot {
            j -= 1;
        }
        a.swap(i - 1, j);
        a[i..].reverse();
        true
    }

    /// Iterator over all k! permutations in lexicographic order.
    ///
    /// # Panics
    /// Panics if `k > 20` (enumerating more is never intended: 21! > 5·10¹⁹).
    pub fn all(k: usize) -> AllPermutations {
        assert!(k <= 20, "enumerating {k}! permutations is not supported");
        AllPermutations { current: Some(Permutation::identity(k)) }
    }

    /// Formats with the paper's 1-based convention, e.g. `⟨2,1,3⟩`.
    pub fn display_one_based(&self) -> String {
        let parts: Vec<String> = self.as_slice().iter().map(|&e| (e + 1).to_string()).collect();
        format!("<{}>", parts.join(","))
    }
}

impl fmt::Display for Permutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> =
            self.as_slice().iter().map(std::string::ToString::to_string).collect();
        write!(f, "[{}]", parts.join(","))
    }
}

impl TryFrom<&[u8]> for Permutation {
    type Error = PermutationError;

    fn try_from(value: &[u8]) -> Result<Self, Self::Error> {
        Self::from_slice(value)
    }
}

/// Iterator produced by [`Permutation::all`].
#[derive(Debug, Clone)]
pub struct AllPermutations {
    current: Option<Permutation>,
}

impl Iterator for AllPermutations {
    type Item = Permutation;

    fn next(&mut self) -> Option<Permutation> {
        let out = self.current?;
        let mut next = out;
        self.current = next.next_lex().then_some(next);
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn identity_roundtrip() {
        let p = Permutation::identity(5);
        assert_eq!(p.as_slice(), &[0, 1, 2, 3, 4]);
        assert_eq!(p.len(), 5);
        assert!(!p.is_empty());
    }

    #[test]
    fn from_slice_validates() {
        assert!(Permutation::from_slice(&[2, 0, 1]).is_ok());
        assert_eq!(Permutation::from_slice(&[0, 0, 1]), Err(PermutationError::NotAPermutation));
        assert_eq!(Permutation::from_slice(&[0, 3]), Err(PermutationError::NotAPermutation));
        let too_long = vec![0u8; MAX_K + 1];
        assert_eq!(Permutation::from_slice(&too_long), Err(PermutationError::TooLong(MAX_K + 1)));
    }

    #[test]
    fn empty_permutation() {
        let p = Permutation::from_slice(&[]).unwrap();
        assert!(p.is_empty());
        assert_eq!(p, Permutation::identity(0));
    }

    #[test]
    fn equality_ignores_trailing_storage() {
        let a = Permutation::from_slice(&[1, 0]).unwrap();
        let b = Permutation::from_slice(&[1, 0]).unwrap();
        assert_eq!(a, b);
        let c = Permutation::from_slice(&[1, 0, 2]).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn inverse_is_involutive_on_composition() {
        let p = Permutation::from_slice(&[2, 0, 3, 1]).unwrap();
        let inv = p.inverse();
        assert_eq!(p.compose(&inv), Permutation::identity(4));
        assert_eq!(inv.compose(&p), Permutation::identity(4));
    }

    #[test]
    fn position_of_matches_inverse() {
        let p = Permutation::from_slice(&[2, 0, 3, 1]).unwrap();
        let inv = p.inverse();
        for e in 0..4u8 {
            assert_eq!(p.position_of(e), Some(inv.as_slice()[e as usize] as usize));
        }
        assert_eq!(p.position_of(9), None);
    }

    #[test]
    fn next_lex_enumerates_factorial_many() {
        for k in 0..=6usize {
            let count = Permutation::all(k).count();
            let expected: usize = (1..=k).product();
            assert_eq!(count, expected.max(1), "k = {k}");
        }
    }

    #[test]
    fn all_permutations_distinct_and_ordered() {
        let perms: Vec<Permutation> = Permutation::all(4).collect();
        let set: HashSet<_> = perms.iter().copied().collect();
        assert_eq!(set.len(), 24);
        for w in perms.windows(2) {
            assert!(w[0] < w[1], "not lexicographically increasing");
        }
        assert_eq!(perms[0], Permutation::identity(4));
        assert_eq!(perms[23].as_slice(), &[3, 2, 1, 0]);
    }

    #[test]
    fn display_conventions() {
        let p = Permutation::from_slice(&[1, 0, 2]).unwrap();
        assert_eq!(p.to_string(), "[1,0,2]");
        assert_eq!(p.display_one_based(), "<2,1,3>");
    }

    #[test]
    fn compose_applies_right_then_left() {
        // other maps 0->1, 1->2, 2->0; self maps 0->2, 1->0, 2->1.
        let other = Permutation::from_slice(&[1, 2, 0]).unwrap();
        let selfp = Permutation::from_slice(&[2, 0, 1]).unwrap();
        assert_eq!(selfp.compose(&other), Permutation::identity(3));
    }

    #[test]
    fn ord_sorts_by_length_then_lex() {
        let short = Permutation::identity(2);
        let long = Permutation::identity(3);
        assert!(short < long);
    }
}
