//! Computing distance permutations (the paper's Π_y).
//!
//! `Π_y` is the unique permutation sorting site indices by increasing
//! distance from `y`, ties broken by increasing site index.  Sorting on the
//! pair `(distance, index)` realises exactly that rule, and because
//! [`dp_metric::Distance`] is totally ordered the result is deterministic.

use crate::perm::{Permutation, MAX_K};
use dp_metric::Metric;

/// Computes the distance permutation of `query` with respect to `sites`.
///
/// Performs exactly `sites.len()` metric evaluations.  Convenience wrapper
/// around [`DistPermComputer`] for one-off calls; bulk scans should reuse a
/// computer to avoid per-call allocation.
///
/// # Panics
/// Panics if `sites.len() > MAX_K`.
pub fn distance_permutation<P, M: Metric<P>>(
    metric: &M,
    sites: &[P],
    query: &P,
) -> Permutation {
    DistPermComputer::new(sites.len()).compute(metric, sites, query)
}

/// Reusable scratch state for computing distance permutations without
/// per-call allocation.
///
/// The scratch is a `(distance, site index)` vector sorted per query; the
/// index in the sort key implements the paper's tie-break.
#[derive(Debug, Clone)]
pub struct DistPermComputer<D> {
    scratch: Vec<(D, u8)>,
    k: usize,
}

impl<D: dp_metric::Distance> DistPermComputer<D> {
    /// Creates a computer for `k` sites.
    ///
    /// # Panics
    /// Panics if `k > MAX_K`.
    pub fn new(k: usize) -> Self {
        assert!(k <= MAX_K, "k = {k} exceeds MAX_K = {MAX_K}");
        Self { scratch: Vec::with_capacity(k), k }
    }

    /// Number of sites this computer was sized for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Computes Π_query for `sites` (must have length `k`).
    pub fn compute<P, M: Metric<P, Dist = D>>(
        &mut self,
        metric: &M,
        sites: &[P],
        query: &P,
    ) -> Permutation {
        assert_eq!(sites.len(), self.k, "site count changed under computer");
        self.scratch.clear();
        for (i, site) in sites.iter().enumerate() {
            self.scratch.push((metric.distance(site, query), i as u8));
        }
        // (distance, site index) — the index component is the tie-break.
        self.scratch.sort_unstable();
        let mut items = [0u8; MAX_K];
        for (slot, &(_, i)) in items.iter_mut().zip(self.scratch.iter()) {
            *slot = i;
        }
        Permutation::from_sorted_indices(&items[..self.k])
    }

    /// Computes Π_query and also returns the sorted `(distance, site)`
    /// pairs — used by index structures that need the distances anyway.
    pub fn compute_with_distances<P, M: Metric<P, Dist = D>>(
        &mut self,
        metric: &M,
        sites: &[P],
        query: &P,
    ) -> (Permutation, &[(D, u8)]) {
        let perm = self.compute(metric, sites, query);
        (perm, &self.scratch)
    }
}

/// Computes the distance permutation of every database element.
///
/// This is the core of the paper's `distperm` index build: `k·n` metric
/// evaluations producing one permutation per element.
pub fn database_permutations<P, M: Metric<P>>(
    metric: &M,
    sites: &[P],
    database: &[P],
) -> Vec<Permutation> {
    let mut computer = DistPermComputer::new(sites.len());
    database
        .iter()
        .map(|y| computer.compute(metric, sites, y))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_metric::{Levenshtein, L1, L2};

    #[test]
    fn permutation_sorts_sites_by_distance() {
        // Sites on a line at 0, 10, 4; query at 3 -> nearest 4 (idx 2),
        // then 0 (idx 0), then 10 (idx 1).
        let sites = vec![vec![0.0], vec![10.0], vec![4.0]];
        let q = vec![3.0];
        let p = distance_permutation(&L2, &sites, &q);
        assert_eq!(p.as_slice(), &[2, 0, 1]);
    }

    #[test]
    fn tie_break_uses_smaller_site_index() {
        // Sites at -1 and +1; query at 0 is equidistant: site 0 wins.
        let sites = vec![vec![-1.0], vec![1.0]];
        let p = distance_permutation(&L2, &sites, &vec![0.0]);
        assert_eq!(p.as_slice(), &[0, 1]);

        // Renumber the sites the other way; the tie still favours index 0,
        // which is now the +1 site.
        let sites = vec![vec![1.0], vec![-1.0]];
        let p = distance_permutation(&L2, &sites, &vec![0.0]);
        assert_eq!(p.as_slice(), &[0, 1]);
    }

    #[test]
    fn query_at_a_site_puts_that_site_first() {
        let sites = vec![vec![0.0, 0.0], vec![5.0, 5.0], vec![-3.0, 2.0]];
        for (i, s) in sites.iter().enumerate() {
            let p = distance_permutation(&L1, &sites, s);
            assert_eq!(p.get(0) as usize, i);
        }
    }

    #[test]
    fn works_for_string_metrics() {
        let sites: Vec<String> = ["hello", "help", "world"].map(String::from).to_vec();
        let q = String::from("helm");
        let p = distance_permutation(&Levenshtein, &sites, &q);
        // d(hello, helm)=2, d(help, helm)=1, d(world, helm)=4.
        assert_eq!(p.as_slice(), &[1, 0, 2]);
    }

    #[test]
    fn computer_reuse_matches_oneshot() {
        let sites = vec![vec![0.0, 1.0], vec![2.0, -1.0], vec![0.5, 0.5], vec![9.0, 9.0]];
        let queries = vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![-5.0, 3.0]];
        let mut computer = DistPermComputer::new(sites.len());
        for q in &queries {
            assert_eq!(
                computer.compute(&L2, &sites, q),
                distance_permutation(&L2, &sites, q)
            );
        }
    }

    #[test]
    fn compute_with_distances_returns_sorted_pairs() {
        let sites = vec![vec![0.0], vec![10.0], vec![4.0]];
        let mut computer = DistPermComputer::new(3);
        let (p, pairs) = computer.compute_with_distances(&L2, &sites, &vec![3.0]);
        assert_eq!(p.as_slice(), &[2, 0, 1]);
        assert_eq!(pairs.len(), 3);
        assert!(pairs.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(pairs[0].1, 2);
    }

    #[test]
    fn database_permutations_bulk() {
        let sites = vec![vec![0.0], vec![1.0]];
        let db = vec![vec![-1.0], vec![0.4], vec![0.6], vec![2.0]];
        let perms = database_permutations(&L2, &sites, &db);
        assert_eq!(perms.len(), 4);
        assert_eq!(perms[0].as_slice(), &[0, 1]);
        assert_eq!(perms[1].as_slice(), &[0, 1]);
        assert_eq!(perms[2].as_slice(), &[1, 0]);
        assert_eq!(perms[3].as_slice(), &[1, 0]);
    }

    #[test]
    #[should_panic(expected = "site count changed")]
    fn site_count_mismatch_panics() {
        let mut computer: DistPermComputer<dp_metric::F64Dist> = DistPermComputer::new(2);
        let sites = vec![vec![0.0]];
        let _ = computer.compute(&L2, &sites, &vec![0.0]);
    }
}
