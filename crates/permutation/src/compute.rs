//! Computing distance permutations (the paper's Π_y).
//!
//! `Π_y` is the unique permutation sorting site indices by increasing
//! distance from `y`, ties broken by increasing site index.  Sorting on the
//! pair `(distance, index)` realises exactly that rule, and because
//! [`dp_metric::Distance`] is totally ordered the result is deterministic.

use crate::counter::{PackedCountSummary, PackedPermutationCounter, PermutationCounter};
use crate::key::PackedKey;
use crate::perm::{Permutation, MAX_K};
use crate::shard::{merge_counted_run_sets, ShardedCounter};
use dp_metric::{BatchDistance, Metric, TransposedSites};

/// Computes the distance permutation of `query` with respect to `sites`.
///
/// Performs exactly `sites.len()` metric evaluations.  Convenience wrapper
/// around [`DistPermComputer`] for one-off calls; bulk scans should reuse a
/// computer to avoid per-call allocation.
///
/// # Panics
/// Panics if `sites.len() > MAX_K`.
pub fn distance_permutation<P, M: Metric<P>>(metric: &M, sites: &[P], query: &P) -> Permutation {
    DistPermComputer::new(sites.len()).compute(metric, sites, query)
}

/// Reusable scratch state for computing distance permutations without
/// per-call allocation.
///
/// The scratch is a `(distance, site index)` vector sorted per query; the
/// index in the sort key implements the paper's tie-break.
#[derive(Debug, Clone)]
pub struct DistPermComputer<D> {
    scratch: Vec<(D, u8)>,
    k: usize,
}

impl<D: dp_metric::Distance> DistPermComputer<D> {
    /// Creates a computer for `k` sites.
    ///
    /// # Panics
    /// Panics if `k > MAX_K`.
    pub fn new(k: usize) -> Self {
        assert!(k <= MAX_K, "k = {k} exceeds MAX_K = {MAX_K}");
        Self { scratch: Vec::with_capacity(k), k }
    }

    /// Number of sites this computer was sized for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Computes Π_query for `sites` (must have length `k`).
    pub fn compute<P, M: Metric<P, Dist = D>>(
        &mut self,
        metric: &M,
        sites: &[P],
        query: &P,
    ) -> Permutation {
        assert_eq!(sites.len(), self.k, "site count changed under computer");
        self.scratch.clear();
        for (i, site) in sites.iter().enumerate() {
            self.scratch.push((metric.distance(site, query), i as u8));
        }
        // (distance, site index) — the index component is the tie-break.
        self.scratch.sort_unstable();
        let mut items = [0u8; MAX_K];
        for (slot, &(_, i)) in items.iter_mut().zip(self.scratch.iter()) {
            *slot = i;
        }
        Permutation::from_sorted_indices(&items[..self.k])
    }

    /// Computes Π_query and also returns the sorted `(distance, site)`
    /// pairs — used by index structures that need the distances anyway.
    pub fn compute_with_distances<P, M: Metric<P, Dist = D>>(
        &mut self,
        metric: &M,
        sites: &[P],
        query: &P,
    ) -> (Permutation, &[(D, u8)]) {
        let perm = self.compute(metric, sites, query);
        (perm, &self.scratch)
    }
}

/// Computes the distance permutation of every database element.
///
/// This is the core of the paper's `distperm` index build: `k·n` metric
/// evaluations producing one permutation per element.
pub fn database_permutations<P, M: Metric<P>>(
    metric: &M,
    sites: &[P],
    database: &[P],
) -> Vec<Permutation> {
    let mut computer = DistPermComputer::new(sites.len());
    database.iter().map(|y| computer.compute(metric, sites, y)).collect()
}

/// Rows scanned per batched-kernel call: large enough to amortise loop
/// overhead, small enough that the `block × k` distance buffer stays in
/// L1 while the k site vectors stay resident throughout.  A whole
/// multiple of the kernel's strip width, so full blocks run entirely on
/// the register-tiled strip path and only the final partial block ever
/// reaches the row-at-a-time remainder.
const FLAT_BLOCK_ROWS: usize = 64 * dp_metric::STRIP_POINTS;
const _: () = assert!(FLAT_BLOCK_ROWS.is_multiple_of(dp_metric::STRIP_POINTS));

/// Computes Π_y for every row of a flat row-major database.
///
/// The batched equivalent of [`database_permutations`]: distances come
/// from [`BatchDistance::batch_distances`] (site-transposed, strip-mined
/// four points per pass with register-tiled accumulators) in blocks of
/// 256 rows, and each row's ranking runs on a stack
/// scratch — no per-row allocation.
/// Results are **identical** (bit-for-bit distances, same tie-break) to
/// the per-point path.
///
/// # Panics
/// Panics if `sites.k() > MAX_K`, if `db_rows` is not a multiple of
/// `sites.dim()`, or if any distance is NaN.
pub fn database_permutations_flat<M: BatchDistance>(
    metric: &M,
    sites: &TransposedSites,
    db_rows: &[f64],
) -> Vec<Permutation> {
    let mut out = Vec::new();
    flat_scan(metric, sites, db_rows, |p| out.push(p));
    out
}

/// Parallel [`database_permutations_flat`] over crossbeam-style scoped
/// threads.  Deterministic: the output is independent of `threads`.
pub fn database_permutations_flat_parallel<M: BatchDistance + Sync>(
    metric: &M,
    sites: &TransposedSites,
    db_rows: &[f64],
    threads: usize,
) -> Vec<Permutation> {
    let dim = sites.dim().max(1);
    assert_eq!(db_rows.len() % dim, 0, "database rows not a multiple of dim");
    let n = db_rows.len() / dim;
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 || n < 1024 {
        return database_permutations_flat(metric, sites, db_rows);
    }
    let rows_per = n.div_ceil(threads);
    let mut perms = vec![Permutation::identity(0); n];
    crossbeam::thread::scope(|scope| {
        for (rows, slots) in db_rows.chunks(rows_per * dim).zip(perms.chunks_mut(rows_per)) {
            scope.spawn(move |_| {
                let mut slot = slots.iter_mut();
                flat_scan(metric, sites, rows, |p| {
                    *slot.next().expect("chunk sizes agree") = p;
                });
            });
        }
    })
    .expect("flat permutation scope");
    perms
}

/// Counts permutation occurrences over a flat database — the batched
/// core of the paper's measurement, feeding a [`PermutationCounter`]
/// without materialising the permutation vector.
pub fn collect_counter_flat<M: BatchDistance>(
    metric: &M,
    sites: &TransposedSites,
    db_rows: &[f64],
) -> PermutationCounter {
    let mut counter = PermutationCounter::new();
    flat_scan(metric, sites, db_rows, |p| counter.insert(p));
    counter
}

/// Parallel [`collect_counter_flat`]: splits the rows across `threads`
/// crossbeam-scoped workers and merges the per-chunk counters.
/// Deterministic — the merged counts are independent of the split.
pub fn collect_counter_flat_parallel<M: BatchDistance + Sync>(
    metric: &M,
    sites: &TransposedSites,
    db_rows: &[f64],
    threads: usize,
) -> PermutationCounter {
    let dim = sites.dim().max(1);
    assert_eq!(db_rows.len() % dim, 0, "database rows not a multiple of dim");
    let n = db_rows.len() / dim;
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 || n < 1024 {
        return collect_counter_flat(metric, sites, db_rows);
    }
    let rows_per = n.div_ceil(threads);
    let mut counters: Vec<PermutationCounter> = Vec::new();
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = db_rows
            .chunks(rows_per * dim)
            .map(|rows| scope.spawn(move |_| collect_counter_flat(metric, sites, rows)))
            .collect();
        for h in handles {
            counters.push(h.join().expect("flat counting worker panicked"));
        }
    })
    .expect("flat counting scope");
    let mut merged = PermutationCounter::new();
    for c in &counters {
        merged.merge(c);
    }
    merged
}

/// Largest k whose permutations pack into a u64 key (5 bits per
/// element) — covers every configuration the paper's experiments use.
pub const PACKED_MAX_K: usize = <u64 as PackedKey>::MAX_K;

/// Largest k the packed pipeline covers at all: the u128 key width
/// (5 bits per element, 25 fields).  `k > WIDE_MAX_K` falls back to the
/// hash counting path.
pub const WIDE_MAX_K: usize = <u128 as PackedKey>::MAX_K;

/// Branchless distance-permutation ranking.
///
/// `ranks[i]` receives the position of site `i` in Π (the number of
/// sites strictly closer, ties to the smaller index — `d_i <= d_j` with
/// `i < j` resolves ties exactly like sorting `(distance, index)` pairs).
/// k²/2 branch-free comparisons beat a comparison sort on this workload:
/// sorting 12 random keys mispredicts a branch every few comparisons,
/// which costs more than the extra arithmetic.
///
/// Distances must be non-NaN (checked by the callers); on that domain
/// plain `<=` coincides with the `F64Dist` total order.
#[inline]
fn rank_row(row_dists: &[f64], ranks: &mut [u8; MAX_K]) {
    let k = row_dists.len();
    for i in 0..k {
        let di = row_dists[i];
        // Site i's rank = closer-or-tied earlier sites + strictly closer
        // later ones: two pure reductions with no cross-iteration memory
        // traffic, which the vectorizer turns into masked lane sums.
        let mut r = 0u8;
        for &dj in &row_dists[..i] {
            r += u8::from(dj <= di);
        }
        for &dj in &row_dists[i + 1..k] {
            r += u8::from(dj < di);
        }
        ranks[i] = r;
    }
}

/// Rows ranked per tile by [`rank_rows`]: the comparison loops run
/// lane-wise across this many rows at once, so every `(i, j)` site pair
/// costs one vector compare instead of `RANK_LANES` scalar ones.
const RANK_LANES: usize = 4;

/// Transposes a `RANK_LANES × k` row-major tile site-major, so each
/// `(i, j)` site comparison is one `f64×LANES` vector compare.
#[inline]
fn transpose_tile(tile: &[f64], k: usize, cols: &mut [[f64; RANK_LANES]; MAX_K]) {
    debug_assert_eq!(tile.len(), RANK_LANES * k);
    for (lane, row) in tile.chunks_exact(k).enumerate() {
        for (col, &d) in cols[..k].iter_mut().zip(row.iter()) {
            col[lane] = d;
        }
    }
}

/// Dispatches a tile kernel on the runtime `k` to its `const`-generic
/// instantiation.  The call site defines a one-argument `arm!` macro
/// mapping a literal `k` to the monomorphic call.
///
/// The constant bound is what makes the pairwise schedule pay off: with
/// `k` known at compile time every per-site loop fully unrolls, and the
/// whole `k × RANK_LANES` i64 accumulator tile is register-allocated
/// (an AVX-512 build has 32 vector registers — enough even at the
/// `u128` widths), so the halved compare count is not bought back by
/// loads and stores of in-memory accumulator rows.
macro_rules! dispatch_tile_k {
    ($k:expr, $arm:ident) => {
        match $k {
            1 => $arm!(1),
            2 => $arm!(2),
            3 => $arm!(3),
            4 => $arm!(4),
            5 => $arm!(5),
            6 => $arm!(6),
            7 => $arm!(7),
            8 => $arm!(8),
            9 => $arm!(9),
            10 => $arm!(10),
            11 => $arm!(11),
            12 => $arm!(12),
            13 => $arm!(13),
            14 => $arm!(14),
            15 => $arm!(15),
            16 => $arm!(16),
            17 => $arm!(17),
            18 => $arm!(18),
            19 => $arm!(19),
            20 => $arm!(20),
            21 => $arm!(21),
            22 => $arm!(22),
            23 => $arm!(23),
            24 => $arm!(24),
            25 => $arm!(25),
            26 => $arm!(26),
            27 => $arm!(27),
            28 => $arm!(28),
            29 => $arm!(29),
            30 => $arm!(30),
            31 => $arm!(31),
            32 => $arm!(32),
            _ => unreachable!("tile kernels require 1 <= k <= MAX_K"),
        }
    };
}

/// Pairwise-halved rank accumulation over a transposed tile: fills
/// `acc[i][lane]` with site `i`'s rank in lane `lane`'s row.
///
/// Each unordered site pair `(i, j)`, `i < j`, is compared **once**:
/// the mask `c = (d_i <= d_j)` settles both sides — site `j` gains `c`
/// (a closer-or-tied earlier site), and site `i` gains `1 - c`, because
/// on the non-NaN domain the callers guarantee `!(d_i <= d_j)` is
/// exactly `d_j < d_i`, the strictly-closer-later rule.  Seeding site
/// `i`'s accumulator with its later-pair count `KC-1-i` and
/// *subtracting* `c` folds the complement into the same mask, so the
/// output is bit-for-bit [`rank_row`]'s at k(k-1)/2 vector compares per
/// tile instead of k(k-1).  The masks accumulate as i64 lanes — a
/// `vcmppd`/`vpsubq` pair on AVX2, no scalar booleans anywhere in the
/// hot loop — and the `pend` tile of not-yet-final rows stays in
/// registers because `KC` is a compile-time constant (see
/// [`dispatch_tile_k`]).
///
/// After outer step `i`, row `i` is **final**: its pairs with smaller
/// indices contributed in earlier steps, the rest in step `i` — so the
/// row streams straight out to `acc[i]` and the fused packer can fold
/// each site into the key lanes without a second pass.
#[inline]
fn pairwise_rank_lanes_k<const KC: usize>(
    cols: &[[f64; RANK_LANES]; MAX_K],
    acc: &mut [[i64; RANK_LANES]; MAX_K],
) {
    let mut pend = [[0i64; RANK_LANES]; KC];
    for i in 0..KC {
        let ci = cols[i];
        let mut ri = pend[i];
        for r in &mut ri {
            *r += (KC - 1 - i) as i64;
        }
        for j in i + 1..KC {
            for lane in 0..RANK_LANES {
                let c = i64::from(ci[lane] <= cols[j][lane]);
                pend[j][lane] += c;
                ri[lane] -= c;
            }
        }
        acc[i] = ri;
    }
}

/// Runtime-`k` front end for [`pairwise_rank_lanes_k`].
#[inline]
fn pairwise_rank_lanes(
    cols: &[[f64; RANK_LANES]; MAX_K],
    k: usize,
    acc: &mut [[i64; RANK_LANES]; MAX_K],
) {
    macro_rules! arm {
        ($kc:literal) => {
            pairwise_rank_lanes_k::<$kc>(cols, acc)
        };
    }
    dispatch_tile_k!(k, arm);
}

/// Ranks a tile of [`RANK_LANES`] rows at once — the
/// [`pairwise_rank_lanes`] schedule over a freshly transposed tile.
/// Tie-break and output are exactly [`rank_row`]'s, row by row.
#[inline]
fn rank_rows_tile(tile: &[f64], k: usize, rank_lanes: &mut [[i64; RANK_LANES]; MAX_K]) {
    let mut cols = [[0.0f64; RANK_LANES]; MAX_K];
    transpose_tile(tile, k, &mut cols);
    pairwise_rank_lanes(&cols, k, rank_lanes);
}

/// Ranks every `k`-wide row of a distance block, emitting one rank
/// vector per row in order — full tiles through [`rank_rows_tile`], the
/// remainder through [`rank_row`] (identical results; the tile is just
/// the vectorized schedule).
#[inline]
fn rank_rows(block_dists: &[f64], k: usize, mut emit: impl FnMut(&[u8; MAX_K])) {
    debug_assert!(k > 0);
    let ranks = &mut [0u8; MAX_K];
    let tiles = block_dists.chunks_exact(RANK_LANES * k);
    let remainder = tiles.remainder();
    let mut rank_lanes = [[0i64; RANK_LANES]; MAX_K];
    for tile in tiles {
        rank_rows_tile(tile, k, &mut rank_lanes);
        for lane in 0..RANK_LANES {
            for (r, lanes) in ranks[..k].iter_mut().zip(rank_lanes.iter()) {
                *r = lanes[lane] as u8;
            }
            emit(ranks);
        }
    }
    for row_dists in remainder.chunks_exact(k) {
        rank_row(row_dists, ranks);
        emit(ranks);
    }
}

/// Shared block driver for the flat kernels: computes batched distances
/// and hands each row's rank vector (`ranks[site] = position`) to `emit`.
fn flat_scan_ranks<M: BatchDistance>(
    metric: &M,
    sites: &TransposedSites,
    db_rows: &[f64],
    mut emit: impl FnMut(&[u8; MAX_K], usize),
) {
    let k = sites.k();
    assert!(k <= MAX_K, "k = {k} exceeds MAX_K = {MAX_K}");
    let dim = sites.dim();
    // Zero-dim flat storage cannot represent a non-empty database (n
    // rows of width 0 are 0 floats) — row count would be unrecoverable.
    assert!(
        dim > 0 || db_rows.is_empty(),
        "sites declare dim 0 but the database has coordinates; build the \
         TransposedSites with the database's dimension"
    );
    let dim = dim.max(1);
    assert_eq!(db_rows.len() % dim, 0, "database rows not a multiple of dim");
    if k == 0 {
        let ranks = &[0u8; MAX_K];
        for _ in 0..db_rows.len() / dim {
            emit(ranks, 0);
        }
        return;
    }
    let mut dists = vec![0.0f64; FLAT_BLOCK_ROWS * k];
    for block in db_rows.chunks(FLAT_BLOCK_ROWS * dim) {
        let rows_in_block = block.len() / dim;
        let block_dists = &mut dists[..rows_in_block * k];
        metric.batch_distances(block, sites, block_dists);
        let any_nan = block_dists.iter().fold(false, |acc, &d| acc | d.is_nan());
        assert!(!any_nan, "distance must not be NaN");
        rank_rows(block_dists, k, |ranks| emit(ranks, k));
    }
}

/// Builds the permutation value from a rank vector.
#[inline]
fn permutation_from_ranks(ranks: &[u8; MAX_K], k: usize) -> Permutation {
    let mut items = [0u8; MAX_K];
    for (i, &r) in ranks[..k].iter().enumerate() {
        items[r as usize] = i as u8;
    }
    Permutation::from_sorted_indices(&items[..k])
}

/// Packs a rank vector into the 5-bits-per-element lexicographic key
/// (requires `k <= K::MAX_K`): element at position `p` of Π occupies
/// group `k-1-p`, the [`crate::pack_perm`] layout, so ascending key order is
/// the permutations' lexicographic order.  Injective, so distinct
/// keys ⇔ distinct permutations.  The fused tile made this test-only:
/// it is the reference the equivalence tests pack against.
#[cfg(test)]
fn packed_key_from_ranks<K: PackedKey>(ranks: &[u8; MAX_K], k: usize) -> K {
    debug_assert!(k <= K::MAX_K);
    let mut key = K::ZERO;
    for (i, &r) in ranks[..k].iter().enumerate() {
        key |= K::from_elem(i as u8) << K::elem_shift(k - 1 - r as usize);
    }
    key
}

/// Ranks **and packs** a tile of [`RANK_LANES`] rows in one fused pass:
/// `keys[lane]` receives row `lane`'s packed lexicographic key, with no
/// intermediate rank rows between compare and key field.
///
/// Built on [`pairwise_rank_lanes`]'s halved-compare schedule.  At the
/// `u64` width, the moment outer step `i` finalizes site `i`'s rank
/// lanes the site's 5-bit field ORs into the lane keys — rank to key
/// field while both are register-resident.  Wide (`u128`) keys keep
/// the rank accumulator for the whole tile instead: a variable 128-bit
/// shift is several ops on 64-bit hardware, so each lane de-transposes
/// into a position-ordered row and shift-accumulates with a constant
/// one-field shift — the same Σ site·2^(5·(k-1-pos)) value, field by
/// field.
#[inline]
fn rank_pack_cols<K: PackedKey, const KC: usize>(
    cols: &[[f64; RANK_LANES]; MAX_K],
    keys: &mut [K; RANK_LANES],
) {
    if K::BITS > 64 {
        let mut acc = [[0i64; RANK_LANES]; MAX_K];
        pairwise_rank_lanes_k::<KC>(cols, &mut acc);
        for (lane, key) in keys.iter_mut().enumerate() {
            let mut items = [0u8; MAX_K];
            for (i, lanes) in acc[..KC].iter().enumerate() {
                items[lanes[lane] as usize] = i as u8;
            }
            for &site in &items[..KC] {
                *key = (*key << K::elem_shift(1)) | K::from_elem(site);
            }
        }
        return;
    }
    // The u64 arm inlines the pairwise schedule so each finalized site
    // folds into the keys immediately (see pairwise_rank_lanes_k for
    // the rank arithmetic and its bit-identity argument).
    let mut pend = [[0i64; RANK_LANES]; KC];
    for i in 0..KC {
        let ci = cols[i];
        let mut ri = pend[i];
        for r in &mut ri {
            *r += (KC - 1 - i) as i64;
        }
        for j in i + 1..KC {
            for lane in 0..RANK_LANES {
                let c = i64::from(ci[lane] <= cols[j][lane]);
                pend[j][lane] += c;
                ri[lane] -= c;
            }
        }
        for (key, &r) in keys.iter_mut().zip(ri.iter()) {
            *key |= K::from_elem(i as u8) << K::elem_shift(KC - 1 - r as usize);
        }
    }
}

/// Runtime-`k` front end for [`rank_pack_cols`]: transposes the tile
/// and dispatches to the constant-`k` fused rank+pack kernel.
#[inline]
fn rank_pack_tile<K: PackedKey>(tile: &[f64], k: usize, keys: &mut [K; RANK_LANES]) {
    debug_assert!(k > 0 && k <= K::MAX_K);
    let mut cols = [[0.0f64; RANK_LANES]; MAX_K];
    transpose_tile(tile, k, &mut cols);
    *keys = [K::ZERO; RANK_LANES];
    macro_rules! arm {
        ($kc:literal) => {
            rank_pack_cols::<K, $kc>(&cols, keys)
        };
    }
    dispatch_tile_k!(k, arm);
}

/// Ranks every `k`-wide row of a distance block and emits one **packed
/// key** per row, in order — every row, full tile or tail, through the
/// fused [`rank_pack_tile`].
///
/// A tail of `n mod RANK_LANES ≠ 0` rows is padded to a full tile by
/// replicating its last real row: lanes are computed independently, so
/// the real lanes' keys are unchanged and the padding lanes' keys are
/// simply not emitted.  One code path, one set of rank/pack semantics.
#[inline]
fn rank_rows_keys<K: PackedKey>(block_dists: &[f64], k: usize, mut emit: impl FnMut(K)) {
    debug_assert!(k > 0 && k <= K::MAX_K);
    let mut keys = [K::ZERO; RANK_LANES];
    let tiles = block_dists.chunks_exact(RANK_LANES * k);
    let remainder = tiles.remainder();
    for tile in tiles {
        rank_pack_tile(tile, k, &mut keys);
        for &key in &keys {
            emit(key);
        }
    }
    let rem_rows = remainder.len() / k;
    if rem_rows > 0 {
        let mut padded = [0.0f64; RANK_LANES * MAX_K];
        let padded = &mut padded[..RANK_LANES * k];
        padded[..remainder.len()].copy_from_slice(remainder);
        for lane in rem_rows..RANK_LANES {
            padded.copy_within((rem_rows - 1) * k..rem_rows * k, lane * k);
        }
        rank_pack_tile(padded, k, &mut keys);
        for &key in &keys[..rem_rows] {
            emit(key);
        }
    }
}

/// Block driver for the packed-key kernels: computes batched distances
/// and hands each row's fused packed key to `emit` — [`flat_scan_ranks`]
/// with the ranking and packing phases fused per tile.
fn flat_scan_keys<K: PackedKey, M: BatchDistance>(
    metric: &M,
    sites: &TransposedSites,
    db_rows: &[f64],
    mut emit: impl FnMut(K),
) {
    let k = sites.k();
    assert!(k <= K::MAX_K, "k = {k} exceeds MAX_K = {} for {}-bit packed keys", K::MAX_K, K::BITS);
    let dim = sites.dim();
    assert!(
        dim > 0 || db_rows.is_empty(),
        "sites declare dim 0 but the database has coordinates; build the \
         TransposedSites with the database's dimension"
    );
    let dim = dim.max(1);
    assert_eq!(db_rows.len() % dim, 0, "database rows not a multiple of dim");
    if k == 0 {
        for _ in 0..db_rows.len() / dim {
            emit(K::ZERO);
        }
        return;
    }
    let mut dists = vec![0.0f64; FLAT_BLOCK_ROWS * k];
    for block in db_rows.chunks(FLAT_BLOCK_ROWS * dim) {
        let rows_in_block = block.len() / dim;
        let block_dists = &mut dists[..rows_in_block * k];
        metric.batch_distances(block, sites, block_dists);
        let any_nan = block_dists.iter().fold(false, |acc, &d| acc | d.is_nan());
        assert!(!any_nan, "distance must not be NaN");
        rank_rows_keys(block_dists, k, &mut emit);
    }
}

fn flat_scan<M: BatchDistance>(
    metric: &M,
    sites: &TransposedSites,
    db_rows: &[f64],
    mut emit: impl FnMut(Permutation),
) {
    flat_scan_ranks(metric, sites, db_rows, |ranks, k| emit(permutation_from_ranks(ranks, k)));
}

/// Computes the packed permutation key of every row — the
/// distance + ranking phases of the counting pipeline with no sort and
/// no counter, in database order, at either key width.
/// [`collect_packed_flat`] is exactly this buffer wrapped in a
/// [`PackedPermutationCounter`]; the `counting_phases` bench measures
/// the phases separately through it.
///
/// # Panics
/// Panics if `sites.k() > K::MAX_K`.
pub fn packed_keys_flat<K: PackedKey, M: BatchDistance>(
    metric: &M,
    sites: &TransposedSites,
    db_rows: &[f64],
) -> Vec<K> {
    let n = db_rows.len() / sites.dim().max(1);
    let mut keys = Vec::with_capacity(n);
    flat_scan_keys(metric, sites, db_rows, |key| keys.push(key));
    keys
}

/// Ranks every row of an `n × k` distance buffer into packed keys — the
/// ranking phase in isolation (the pipeline normally interleaves it with
/// blocked distance computation; this entry point exists so the phase
/// benchmarks can time it against a precomputed buffer).
///
/// # Panics
/// Panics if `k` is 0 or exceeds `K::MAX_K`, if the buffer is not a
/// whole number of rows, or if any distance is NaN.
pub fn rank_distance_rows_packed<K: PackedKey>(row_dists: &[f64], k: usize) -> Vec<K> {
    assert!((1..=K::MAX_K).contains(&k), "k = {k} outside 1..=MAX_K for this key width");
    assert_eq!(row_dists.len() % k, 0, "distance buffer not a multiple of k");
    let any_nan = row_dists.iter().fold(false, |acc, &d| acc | d.is_nan());
    assert!(!any_nan, "distance must not be NaN");
    let mut keys = Vec::with_capacity(row_dists.len() / k);
    rank_rows_keys(row_dists, k, |key| keys.push(key));
    keys
}

/// Counts permutation occurrences over a flat database into a
/// [`PackedPermutationCounter`] — the fastest counting path: no
/// permutation value is materialised, keys are single machine words.
///
/// # Panics
/// Panics if `sites.k() > K::MAX_K`.
pub fn collect_packed_flat<K: PackedKey, M: BatchDistance>(
    metric: &M,
    sites: &TransposedSites,
    db_rows: &[f64],
) -> PackedPermutationCounter<K> {
    PackedPermutationCounter::from_keys(sites.k(), packed_keys_flat(metric, sites, db_rows))
}

/// Parallel [`collect_packed_flat`]: splits the rows across `threads`
/// crossbeam-scoped workers, radix-sorts each per-chunk key buffer
/// inside its worker, and merges the **sorted** runs — so the returned
/// counter's later `finalize` hits the sorted fast path instead of
/// re-sorting from scratch.  Deterministic: the finalized summary is
/// independent of the split (a merge of sorted chunk multisets is the
/// sorted multiset of the concatenation).
///
/// # Panics
/// Panics if `sites.k() > K::MAX_K`.
pub fn collect_packed_flat_parallel<K: PackedKey, M: BatchDistance + Sync>(
    metric: &M,
    sites: &TransposedSites,
    db_rows: &[f64],
    threads: usize,
) -> PackedPermutationCounter<K> {
    assert!(
        sites.k() <= K::MAX_K,
        "k = {} exceeds MAX_K = {} for {}-bit packed keys",
        sites.k(),
        K::MAX_K,
        K::BITS
    );
    let dim = sites.dim().max(1);
    assert_eq!(db_rows.len() % dim, 0, "database rows not a multiple of dim");
    let n = db_rows.len() / dim;
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 || n < 1024 {
        return collect_packed_flat(metric, sites, db_rows);
    }
    let rows_per = n.div_ceil(threads);
    let mut runs: Vec<Vec<K>> = Vec::new();
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = db_rows
            .chunks(rows_per * dim)
            .map(|rows| {
                scope.spawn(move |_| {
                    let mut counter = collect_packed_flat::<K, M>(metric, sites, rows);
                    counter.sort_keys(&mut crate::radix::RadixSorter::new());
                    counter.into_keys()
                })
            })
            .collect();
        for h in handles {
            runs.push(h.join().expect("flat counting worker panicked"));
        }
    })
    .expect("flat counting scope");
    PackedPermutationCounter::from_keys(sites.k(), merge_sorted_runs(runs))
}

/// Streaming sharded counting over a flat database: the summary is
/// identical to [`collect_packed_flat`] + finalize, but the working set
/// never holds all n keys — at most `shard_rows` buffered keys (plus
/// equal sort scratch) and one `(key, count)` frontier entry per
/// distinct permutation (see [`ShardedCounter`]).  The block driver
/// feeds fused rank+pack tiles straight into the counter, so the
/// distance and ranking phases are untouched.
///
/// # Panics
/// Panics if `sites.k() > K::MAX_K` or `shard_rows` is 0 (callers treat
/// 0 as "in-memory" and must dispatch before reaching this).
pub fn collect_sharded_flat<K: PackedKey, M: BatchDistance>(
    metric: &M,
    sites: &TransposedSites,
    db_rows: &[f64],
    shard_rows: usize,
) -> PackedCountSummary<K> {
    let mut counter = ShardedCounter::new(sites.k(), shard_rows);
    flat_scan_keys(metric, sites, db_rows, |key| counter.insert_key(key));
    counter.finalize()
}

/// Parallel [`collect_sharded_flat`]: each of `threads` scoped workers
/// streams its row range through its own [`ShardedCounter`] (each
/// bounded by `shard_rows`), and the per-worker frontiers — already
/// sorted `(key, count)` runs — merge pairwise with counts summed.
/// Deterministic and identical to the sequential path: the merged run
/// set is the run-length scan of the full multiset regardless of the
/// split.
///
/// # Panics
/// Panics if `sites.k() > K::MAX_K` or `shard_rows` is 0.
pub fn collect_sharded_flat_parallel<K: PackedKey, M: BatchDistance + Sync>(
    metric: &M,
    sites: &TransposedSites,
    db_rows: &[f64],
    threads: usize,
    shard_rows: usize,
) -> PackedCountSummary<K> {
    let dim = sites.dim().max(1);
    assert_eq!(db_rows.len() % dim, 0, "database rows not a multiple of dim");
    let n = db_rows.len() / dim;
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 || n < 1024 {
        return collect_sharded_flat(metric, sites, db_rows, shard_rows);
    }
    let rows_per = n.div_ceil(threads);
    let mut runs: Vec<Vec<(K, u64)>> = Vec::new();
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = db_rows
            .chunks(rows_per * dim)
            .map(|rows| {
                scope.spawn(move |_| {
                    let mut counter = ShardedCounter::<K>::new(sites.k(), shard_rows);
                    flat_scan_keys(metric, sites, rows, |key| counter.insert_key(key));
                    counter.into_runs()
                })
            })
            .collect();
        for h in handles {
            runs.push(h.join().expect("sharded counting worker panicked"));
        }
    })
    .expect("sharded counting scope");
    PackedCountSummary::from_counted_runs(sites.k(), merge_counted_run_sets(runs))
}

/// Merges sorted runs pairwise until one remains — `O(n log t)` for `t`
/// runs, each round a cache-friendly linear two-way merge.
fn merge_sorted_runs<K: PackedKey>(mut runs: Vec<Vec<K>>) -> Vec<K> {
    while runs.len() > 1 {
        let mut next = Vec::with_capacity(runs.len().div_ceil(2));
        let mut it = runs.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(merge_two(&a, &b)),
                None => next.push(a),
            }
        }
        runs = next;
    }
    runs.pop().unwrap_or_default()
}

fn merge_two<K: PackedKey>(a: &[K], b: &[K]) -> Vec<K> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_metric::{Levenshtein, L1, L2};

    #[test]
    fn permutation_sorts_sites_by_distance() {
        // Sites on a line at 0, 10, 4; query at 3 -> nearest 4 (idx 2),
        // then 0 (idx 0), then 10 (idx 1).
        let sites = vec![vec![0.0], vec![10.0], vec![4.0]];
        let q = vec![3.0];
        let p = distance_permutation(&L2, &sites, &q);
        assert_eq!(p.as_slice(), &[2, 0, 1]);
    }

    #[test]
    fn tie_break_uses_smaller_site_index() {
        // Sites at -1 and +1; query at 0 is equidistant: site 0 wins.
        let sites = vec![vec![-1.0], vec![1.0]];
        let p = distance_permutation(&L2, &sites, &vec![0.0]);
        assert_eq!(p.as_slice(), &[0, 1]);

        // Renumber the sites the other way; the tie still favours index 0,
        // which is now the +1 site.
        let sites = vec![vec![1.0], vec![-1.0]];
        let p = distance_permutation(&L2, &sites, &vec![0.0]);
        assert_eq!(p.as_slice(), &[0, 1]);
    }

    #[test]
    fn query_at_a_site_puts_that_site_first() {
        let sites = vec![vec![0.0, 0.0], vec![5.0, 5.0], vec![-3.0, 2.0]];
        for (i, s) in sites.iter().enumerate() {
            let p = distance_permutation(&L1, &sites, s);
            assert_eq!(p.get(0) as usize, i);
        }
    }

    #[test]
    fn works_for_string_metrics() {
        let sites: Vec<String> = ["hello", "help", "world"].map(String::from).to_vec();
        let q = String::from("helm");
        let p = distance_permutation(&Levenshtein, &sites, &q);
        // d(hello, helm)=2, d(help, helm)=1, d(world, helm)=4.
        assert_eq!(p.as_slice(), &[1, 0, 2]);
    }

    #[test]
    fn computer_reuse_matches_oneshot() {
        let sites = vec![vec![0.0, 1.0], vec![2.0, -1.0], vec![0.5, 0.5], vec![9.0, 9.0]];
        let queries = vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![-5.0, 3.0]];
        let mut computer = DistPermComputer::new(sites.len());
        for q in &queries {
            assert_eq!(computer.compute(&L2, &sites, q), distance_permutation(&L2, &sites, q));
        }
    }

    #[test]
    fn compute_with_distances_returns_sorted_pairs() {
        let sites = vec![vec![0.0], vec![10.0], vec![4.0]];
        let mut computer = DistPermComputer::new(3);
        let (p, pairs) = computer.compute_with_distances(&L2, &sites, &vec![3.0]);
        assert_eq!(p.as_slice(), &[2, 0, 1]);
        assert_eq!(pairs.len(), 3);
        assert!(pairs.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(pairs[0].1, 2);
    }

    #[test]
    fn database_permutations_bulk() {
        let sites = vec![vec![0.0], vec![1.0]];
        let db = vec![vec![-1.0], vec![0.4], vec![0.6], vec![2.0]];
        let perms = database_permutations(&L2, &sites, &db);
        assert_eq!(perms.len(), 4);
        assert_eq!(perms[0].as_slice(), &[0, 1]);
        assert_eq!(perms[1].as_slice(), &[0, 1]);
        assert_eq!(perms[2].as_slice(), &[1, 0]);
        assert_eq!(perms[3].as_slice(), &[1, 0]);
    }

    #[test]
    #[should_panic(expected = "site count changed")]
    fn site_count_mismatch_panics() {
        let mut computer: DistPermComputer<dp_metric::F64Dist> = DistPermComputer::new(2);
        let sites = vec![vec![0.0]];
        let _ = computer.compute(&L2, &sites, &vec![0.0]);
    }

    fn weyl_rows(n: usize, dim: usize, salt: u64) -> Vec<f64> {
        (0..n * dim)
            .map(|i| {
                ((i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15 ^ salt) >> 11) as f64
                    / (1u64 << 53) as f64
            })
            .collect()
    }

    #[test]
    fn flat_kernel_matches_per_point_path() {
        use dp_metric::{L2Squared, LInf};
        let (n, k, dim) = (517, 9, 5); // odd n exercises the partial block
        let db = weyl_rows(n, dim, 1);
        let site_rows = weyl_rows(k, dim, 2);
        let sites_t = TransposedSites::from_rows(&site_rows, dim);
        let nested_db: Vec<Vec<f64>> = db.chunks_exact(dim).map(<[f64]>::to_vec).collect();
        let nested_sites: Vec<Vec<f64>> =
            site_rows.chunks_exact(dim).map(<[f64]>::to_vec).collect();
        let flat = database_permutations_flat(&L2Squared, &sites_t, &db);
        let nested = database_permutations(&L2Squared, &nested_sites, &nested_db);
        assert_eq!(flat, nested);
        let flat_linf = database_permutations_flat(&LInf, &sites_t, &db);
        let nested_linf = database_permutations(&LInf, &nested_sites, &nested_db);
        assert_eq!(flat_linf, nested_linf);
    }

    #[test]
    fn flat_parallel_is_deterministic_in_thread_count() {
        use dp_metric::L2Squared;
        let (n, k, dim) = (5000, 7, 3);
        let db = weyl_rows(n, dim, 3);
        let sites_t = TransposedSites::from_rows(&weyl_rows(k, dim, 4), dim);
        let seq = database_permutations_flat(&L2Squared, &sites_t, &db);
        for threads in [1, 2, 3, 8] {
            assert_eq!(
                database_permutations_flat_parallel(&L2Squared, &sites_t, &db, threads),
                seq,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn flat_counter_agrees_with_permutation_stream() {
        use dp_metric::L1;
        let (n, k, dim) = (800, 6, 2);
        let db = weyl_rows(n, dim, 5);
        let sites_t = TransposedSites::from_rows(&weyl_rows(k, dim, 6), dim);
        let counter = collect_counter_flat(&L1, &sites_t, &db);
        let perms = database_permutations_flat(&L1, &sites_t, &db);
        let mut direct = PermutationCounter::new();
        for &p in &perms {
            direct.insert(p);
        }
        assert_eq!(counter.distinct(), direct.distinct());
        assert_eq!(counter.total(), direct.total());
        assert_eq!(counter.total(), n as u64);
    }

    #[test]
    fn parallel_collectors_match_sequential_collectors() {
        use dp_metric::L2Squared;
        let (n, k, dim) = (6000, 8, 3);
        let db = weyl_rows(n, dim, 7);
        let sites_t = TransposedSites::from_rows(&weyl_rows(k, dim, 8), dim);
        let seq_packed = collect_packed_flat::<u64, _>(&L2Squared, &sites_t, &db).finalize();
        let seq_hash = collect_counter_flat(&L2Squared, &sites_t, &db);
        for threads in [1, 2, 3, 8] {
            let par = collect_packed_flat_parallel::<u64, _>(&L2Squared, &sites_t, &db, threads)
                .finalize();
            assert_eq!(par.distinct(), seq_packed.distinct(), "threads = {threads}");
            assert_eq!(par.total(), seq_packed.total());
            assert_eq!(par.permutations(), seq_packed.permutations());
            let par_hash = collect_counter_flat_parallel(&L2Squared, &sites_t, &db, threads);
            assert_eq!(par_hash.distinct(), seq_hash.distinct(), "threads = {threads}");
            assert_eq!(par_hash.sorted_permutations(), seq_hash.sorted_permutations());
        }
    }

    #[test]
    fn wide_collectors_match_hash_collectors_above_the_u64_seam() {
        use dp_metric::L2Squared;
        // k = 16 only fits the u128 key width; the wide sorted-run
        // pipeline must agree with the hash oracle exactly.
        let (n, k, dim) = (4000, 16, 3);
        let db = weyl_rows(n, dim, 11);
        let sites_t = TransposedSites::from_rows(&weyl_rows(k, dim, 12), dim);
        let wide = collect_packed_flat::<u128, _>(&L2Squared, &sites_t, &db).finalize();
        let hash = collect_counter_flat(&L2Squared, &sites_t, &db);
        assert_eq!(wide.distinct(), hash.distinct());
        assert_eq!(wide.total(), hash.total());
        assert_eq!(wide.mean_occupancy().to_bits(), hash.mean_occupancy().to_bits());
        let mut decoded = wide.permutations();
        decoded.sort_unstable();
        assert_eq!(decoded, hash.sorted_permutations());
        for threads in [1, 2, 4] {
            let par = collect_packed_flat_parallel::<u128, _>(&L2Squared, &sites_t, &db, threads)
                .finalize();
            assert_eq!(par.distinct(), wide.distinct(), "threads = {threads}");
            assert_eq!(par.permutations(), wide.permutations(), "threads = {threads}");
        }
    }

    #[test]
    fn fused_key_packing_matches_rank_then_pack() {
        // The fused tile packer must emit exactly the keys the two-phase
        // rank → pack path produces, at both widths, for every tail
        // shape (n mod RANK_LANES ∈ {0, 1, 2, 3} — the padded tail
        // shares the fused path and must stay invisible).
        for n in [1024usize, 1025, 1026, 1027, 1, 2, 3] {
            for k in [1usize, 7, 12] {
                let row_dists = weyl_rows(n, k, 31 + (n * 31 + k) as u64);
                let fused: Vec<u64> = rank_distance_rows_packed(&row_dists, k);
                let mut unfused: Vec<u64> = Vec::new();
                rank_rows(&row_dists, k, |ranks| unfused.push(packed_key_from_ranks(ranks, k)));
                assert_eq!(fused, unfused, "n = {n}, k = {k}");
            }
            for k in [13usize, 20, 25] {
                let row_dists = weyl_rows(n, k, 41 + (n * 37 + k) as u64);
                let fused: Vec<u128> = rank_distance_rows_packed(&row_dists, k);
                let mut unfused: Vec<u128> = Vec::new();
                rank_rows(&row_dists, k, |ranks| unfused.push(packed_key_from_ranks(ranks, k)));
                assert_eq!(fused, unfused, "n = {n}, k = {k}");
            }
        }
    }

    #[test]
    fn sharded_collectors_match_in_memory_collectors() {
        use dp_metric::L2Squared;
        let (n, k, dim) = (4099, 9, 3); // n mod RANK_LANES = 3
        let db = weyl_rows(n, dim, 51);
        let sites_t = TransposedSites::from_rows(&weyl_rows(k, dim, 52), dim);
        let expected = collect_packed_flat::<u64, _>(&L2Squared, &sites_t, &db).finalize();
        for shard_rows in [1usize, 1000, n, n + 1] {
            let sharded = collect_sharded_flat::<u64, _>(&L2Squared, &sites_t, &db, shard_rows);
            assert_eq!(sharded.distinct(), expected.distinct(), "shard_rows = {shard_rows}");
            assert_eq!(sharded.total(), expected.total());
            assert_eq!(sharded.lexicographic_counts(), expected.lexicographic_counts());
            assert_eq!(sharded.permutations(), expected.permutations());
            for threads in [2, 4] {
                let par = collect_sharded_flat_parallel::<u64, _>(
                    &L2Squared, &sites_t, &db, threads, shard_rows,
                );
                assert_eq!(par.distinct(), expected.distinct(), "threads = {threads}");
                assert_eq!(par.lexicographic_counts(), expected.lexicographic_counts());
                assert_eq!(par.permutations(), expected.permutations());
            }
        }
    }

    #[test]
    fn flat_kernel_handles_empty_inputs() {
        let sites_t = TransposedSites::from_rows(&[0.25, 0.75], 1);
        assert!(database_permutations_flat(&L2, &sites_t, &[]).is_empty());
        let no_sites = TransposedSites::from_rows(&[], 0);
        let perms = database_permutations_flat(&L2, &no_sites, &[]);
        assert!(perms.is_empty());
    }
}
