//! Property tests for the arbitrary-precision naturals: every operation
//! must agree with `u128` wherever `u128` can express the answer, and the
//! Theorem 7 recurrences must agree wherever both run.

use dp_theory::bignum::{factorial_big, BigNat};
use dp_theory::euclidean::{n_euclidean, storage_bits};
use dp_theory::n_euclidean_big;
use proptest::prelude::*;

proptest! {
    #[test]
    fn add_matches_u128(a in 0u128..(1 << 126), b in 0u128..(1 << 126)) {
        let got = BigNat::from(a).add(&BigNat::from(b));
        prop_assert_eq!(got.to_u128(), Some(a + b));
    }

    #[test]
    fn mul_matches_u128(a in 0u128..(1 << 63), b in 0u128..(1 << 63)) {
        let got = BigNat::from(a).mul(&BigNat::from(b));
        prop_assert_eq!(got.to_u128(), Some(a * b));
        let small = BigNat::from(a).mul_u64(b as u64);
        prop_assert_eq!(small.to_u128(), Some(a * b));
    }

    #[test]
    fn ordering_matches_u128(a in any::<u128>(), b in any::<u128>()) {
        prop_assert_eq!(BigNat::from(a).cmp(&BigNat::from(b)), a.cmp(&b));
    }

    #[test]
    fn display_matches_u128(v in any::<u128>()) {
        prop_assert_eq!(BigNat::from(v).to_string(), v.to_string());
    }

    #[test]
    fn ceil_log2_matches_element_bits(v in 1u128..(1 << 100)) {
        // ⌈log₂ v⌉ computed the integer way.
        let expected = 128 - (v - 1).leading_zeros();
        let expected = if v == 1 { 0 } else { expected };
        prop_assert_eq!(BigNat::from(v).ceil_log2(), u64::from(expected));
    }

    #[test]
    fn add_is_commutative_and_associative_past_u128(
        a in any::<u128>(),
        b in any::<u128>(),
        c in any::<u128>()
    ) {
        let (x, y, z) = (BigNat::from(a), BigNat::from(b), BigNat::from(c));
        prop_assert_eq!(x.add(&y), y.add(&x));
        prop_assert_eq!(x.add(&y).add(&z), x.add(&y.add(&z)));
    }

    #[test]
    fn mul_distributes_over_add(a in 0u128..(1 << 90), b in 0u128..(1 << 90), m in 0u64..1000) {
        let (x, y) = (BigNat::from(a), BigNat::from(b));
        prop_assert_eq!(
            x.add(&y).mul_u64(m),
            x.mul_u64(m).add(&y.mul_u64(m))
        );
    }

    #[test]
    fn big_recurrence_agrees_with_u128_recurrence(d in 0u32..8, k in 1u32..16) {
        prop_assert_eq!(n_euclidean_big(d, k).to_u128(), n_euclidean(d, k));
    }

    #[test]
    fn big_storage_bits_agree(d in 1u32..7, k in 2u32..13) {
        prop_assert_eq!(
            n_euclidean_big(d, k).ceil_log2(),
            u64::from(storage_bits(d, k).unwrap())
        );
    }
}

#[test]
fn factorials_chain_multiplicatively() {
    let mut acc = BigNat::one();
    for k in 1..=60u32 {
        acc = acc.mul_u64(u64::from(k));
        assert_eq!(acc, factorial_big(k), "k = {k}");
    }
    // Spot value: 60! has 82 decimal digits.
    assert_eq!(factorial_big(60).to_string().len(), 82);
}
