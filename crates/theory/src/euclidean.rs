//! Theorem 7: the exact count N_{d,2}(k) of distance permutations in
//! d-dimensional Euclidean space, and the paper's Table 1.
//!
//! The recurrence extends Price's cake-cutting argument, correcting for the
//! forced coincidences a|x ∩ b|x = a|b ∩ b|x among bisectors:
//!
//! ```text
//! N_{0,2}(k) = N_{d,2}(1) = 1
//! N_{d,2}(k) = N_{d,2}(k-1) + (k-1) · N_{d-1,2}(k-1)
//! ```
//!
//! Corollary 8 gives N_{d,2}(k) ≤ k^{2d} and leading term k^{2d}/(2^d d!),
//! hence Θ(d log k) storage bits per permutation.

use crate::bignum::BigNat;
use crate::cake::binomial;

/// Exact N_{d,2}(k) by the Theorem 7 recurrence; `None` on u128 overflow.
///
/// Values relevant to the paper (d ≤ 10, k ≤ 12) are tiny; the table is
/// computed row by row in O(d·k).
pub fn n_euclidean(d: u32, k: u32) -> Option<u128> {
    if d == 0 || k <= 1 {
        return Some(1);
    }
    // row[j] holds N_{j,2}(current kk).
    let d = d as usize;
    let mut row: Vec<u128> = vec![1; d + 1];
    for kk in 2..=u128::from(k) {
        // Sweep high dimensions first so row[j-1] is still at kk-1.
        for j in (1..=d).rev() {
            let add = (kk - 1).checked_mul(row[j - 1])?;
            row[j] = row[j].checked_add(add)?;
        }
        // j = 0: N_{0,2}(kk) = 1 already in place.
    }
    Some(row[d])
}

/// Corollary 8 upper bound k^{2d}; `None` on overflow.
pub fn corollary8_upper(d: u32, k: u32) -> Option<u128> {
    u128::from(k).checked_pow(2 * d)
}

/// Corollary 8 leading term k^{2d} / (2^d · d!), as f64.
pub fn corollary8_leading_term(d: u32, k: u32) -> f64 {
    let mut denom = 1.0f64;
    for i in 1..=u64::from(d) {
        denom *= 2.0 * i as f64;
    }
    (f64::from(k)).powi(2 * d as i32) / denom
}

/// Bits needed to store one Euclidean distance permutation exactly:
/// ⌈log₂ N_{d,2}(k)⌉ (Corollary 8 shows this is Θ(d log k)).
pub fn storage_bits(d: u32, k: u32) -> Option<u32> {
    let n = n_euclidean(d, k)?;
    Some(if n <= 1 { 0 } else { 128 - (n - 1).leading_zeros() })
}

/// The paper's Table 1 layout: rows d = 1..=10, columns k = 2..=12.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table1 {
    /// `values[d-1][k-2]` = N_{d,2}(k).
    pub values: Vec<Vec<u128>>,
}

/// Dimensions covered by [`table1`] (d = 1..=10).
pub const TABLE1_DIMS: std::ops::RangeInclusive<u32> = 1..=10;
/// Site counts covered by [`table1`] (k = 2..=12).
pub const TABLE1_KS: std::ops::RangeInclusive<u32> = 2..=12;

/// Generates the paper's Table 1 exactly.
pub fn table1() -> Table1 {
    let values = TABLE1_DIMS
        .map(|d| {
            TABLE1_KS.map(|k| n_euclidean(d, k).expect("Table 1 range fits in u128")).collect()
        })
        .collect();
    Table1 { values }
}

impl Table1 {
    /// N_{d,2}(k) from the generated table.
    ///
    /// # Panics
    /// Panics if (d, k) is outside the published table's range.
    pub fn get(&self, d: u32, k: u32) -> u128 {
        assert!(TABLE1_DIMS.contains(&d) && TABLE1_KS.contains(&k));
        self.values[(d - 1) as usize][(k - 2) as usize]
    }

    /// Renders the table in the paper's row/column layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("N_{d,2}(k): rows d=1..10, columns k=2..12\n");
        out.push_str("  d\\k");
        for k in TABLE1_KS {
            out.push_str(&format!("{k:>12}"));
        }
        out.push('\n');
        for (i, row) in self.values.iter().enumerate() {
            out.push_str(&format!("{:>5}", i + 1));
            for v in row {
                out.push_str(&format!("{v:>12}"));
            }
            out.push('\n');
        }
        out
    }
}

/// In one dimension the recurrence collapses to C(k,2)+1, the same value
/// as the tree-metric bound (the paper notes this coincidence).
pub fn n_euclidean_1d(k: u32) -> u128 {
    binomial(u64::from(k), 2).expect("C(k,2) fits u128") + 1
}

/// Exact N_{d,2}(k) in arbitrary precision — no overflow ceiling.
///
/// Past k ≈ 34 the lower-triangle values (= k!) exceed `u128` and
/// [`n_euclidean`] returns `None`; this variant runs the same recurrence
/// on [`BigNat`] limbs so Table 1 can be extended arbitrarily (the
/// `table1 --extended` harness uses it).  For values that fit, the two
/// agree exactly (tested).
pub fn n_euclidean_big(d: u32, k: u32) -> BigNat {
    if d == 0 || k <= 1 {
        return BigNat::one();
    }
    let d = d as usize;
    let mut row: Vec<BigNat> = vec![BigNat::one(); d + 1];
    for kk in 2..=u64::from(k) {
        for j in (1..=d).rev() {
            row[j] = row[j].add(&row[j - 1].mul_u64(kk - 1));
        }
    }
    row.swap_remove(d)
}

/// ⌈log₂ N_{d,2}(k)⌉ without an overflow ceiling.
pub fn storage_bits_big(d: u32, k: u32) -> u64 {
    n_euclidean_big(d, k).ceil_log2()
}

/// An extended Table 1: rows d = 1..=dmax, columns k = 2..=kmax, in
/// arbitrary precision.
pub fn table1_extended(dmax: u32, kmax: u32) -> Vec<Vec<BigNat>> {
    assert!(kmax >= 2, "table needs k >= 2");
    (1..=dmax).map(|d| (2..=kmax).map(|k| n_euclidean_big(d, k)).collect()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 1 of the paper, transcribed verbatim for k = 2..8.
    const PAPER_TABLE_LEFT: [[u128; 7]; 10] = [
        [2, 4, 7, 11, 16, 22, 29],
        [2, 6, 18, 46, 101, 197, 351],
        [2, 6, 24, 96, 326, 932, 2311],
        [2, 6, 24, 120, 600, 2556, 9080],
        [2, 6, 24, 120, 720, 4320, 22212],
        [2, 6, 24, 120, 720, 5040, 35280],
        [2, 6, 24, 120, 720, 5040, 40320],
        [2, 6, 24, 120, 720, 5040, 40320],
        [2, 6, 24, 120, 720, 5040, 40320],
        [2, 6, 24, 120, 720, 5040, 40320],
    ];

    /// Table 1 of the paper, k = 9..12 block.
    const PAPER_TABLE_RIGHT: [[u128; 4]; 10] = [
        [37, 46, 56, 67],
        [583, 916, 1376, 1992],
        [5119, 10366, 19526, 34662],
        [27568, 73639, 177299, 392085],
        [94852, 342964, 1079354, 3029643],
        [212976, 1066644, 4496284, 16369178],
        [322560, 2239344, 12905784, 62364908],
        [362880, 3265920, 25659360, 167622984],
        [362880, 3628800, 36288000, 318540960],
        [362880, 3628800, 39916800, 439084800],
    ];

    #[test]
    fn reproduces_paper_table1_exactly() {
        let t = table1();
        for d in 1..=10u32 {
            for k in 2..=8u32 {
                assert_eq!(
                    t.get(d, k),
                    PAPER_TABLE_LEFT[(d - 1) as usize][(k - 2) as usize],
                    "d={d} k={k}"
                );
            }
            for k in 9..=12u32 {
                assert_eq!(
                    t.get(d, k),
                    PAPER_TABLE_RIGHT[(d - 1) as usize][(k - 9) as usize],
                    "d={d} k={k}"
                );
            }
        }
    }

    #[test]
    fn base_cases() {
        assert_eq!(n_euclidean(0, 5), Some(1));
        assert_eq!(n_euclidean(7, 1), Some(1));
        assert_eq!(n_euclidean(0, 1), Some(1));
    }

    #[test]
    fn one_dimension_is_binomial_plus_one() {
        for k in 1..=40u32 {
            assert_eq!(n_euclidean(1, k), Some(n_euclidean_1d(k)));
        }
    }

    #[test]
    fn factorial_in_lower_triangle() {
        // Theorem 6: for d >= k-1 every permutation occurs, N = k!.
        for k in 2..=10u32 {
            let fact: u128 = (1..=u128::from(k)).product();
            for d in (k - 1)..=(k + 2) {
                assert_eq!(n_euclidean(d, k), Some(fact), "d={d} k={k}");
            }
        }
    }

    #[test]
    fn monotone_in_both_arguments() {
        for d in 1..8u32 {
            for k in 2..10u32 {
                let here = n_euclidean(d, k).unwrap();
                assert!(n_euclidean(d + 1, k).unwrap() >= here);
                assert!(n_euclidean(d, k + 1).unwrap() > here);
            }
        }
    }

    #[test]
    fn corollary8_bound_holds() {
        for d in 1..=6u32 {
            for k in 2..=12u32 {
                let n = n_euclidean(d, k).unwrap();
                let bound = corollary8_upper(d, k).unwrap();
                assert!(n <= bound, "d={d} k={k}: {n} > {bound}");
            }
        }
    }

    #[test]
    fn corollary8_leading_term_converges() {
        // N_{d,2}(k) / (k^{2d}/(2^d d!)) -> 1 as k grows; at d=2, k=4000
        // the ratio should be within ~0.2% of 1.
        let d = 2u32;
        let k = 4000u32;
        let n = n_euclidean(d, k).unwrap() as f64;
        let lead = corollary8_leading_term(d, k);
        let ratio = n / lead;
        assert!((ratio - 1.0).abs() < 0.005, "ratio {ratio}");
    }

    #[test]
    fn storage_bits_is_theta_d_log_k() {
        // d=3, k=12: N = 34662 -> 16 bits, far below log2(12!) = 29 bits.
        assert_eq!(storage_bits(3, 12), Some(16));
        assert_eq!(storage_bits(1, 2), Some(1));
        assert_eq!(storage_bits(0, 9), Some(0));
    }

    #[test]
    fn render_contains_key_values() {
        let s = table1().render();
        assert!(s.contains("439084800"));
        assert!(s.contains("392085"));
    }

    #[test]
    fn overflow_reported_as_none() {
        // Far outside any practical range: must not wrap silently.
        assert_eq!(corollary8_upper(64, u32::MAX), None);
    }

    #[test]
    fn big_recurrence_agrees_with_u128_in_range() {
        for d in 0..=10u32 {
            for k in 1..=14u32 {
                assert_eq!(n_euclidean_big(d, k).to_u128(), n_euclidean(d, k), "d={d} k={k}");
            }
        }
    }

    #[test]
    fn big_recurrence_reaches_past_u128() {
        // d = 39, k = 40 sits in the lower triangle, so N = 40! > 2^128.
        use crate::bignum::factorial_big;
        let n = n_euclidean_big(39, 40);
        assert_eq!(n, factorial_big(40));
        assert!(n.to_u128().is_none(), "40! must exceed u128");
        // And u128 arithmetic correctly reports the overflow.
        assert_eq!(n_euclidean(39, 40), None);
    }

    #[test]
    fn big_storage_bits_match_small() {
        for d in 1..=6u32 {
            for k in 2..=12u32 {
                assert_eq!(storage_bits_big(d, k), u64::from(storage_bits(d, k).unwrap()));
            }
        }
    }

    #[test]
    fn extended_table_shape_and_lower_triangle() {
        use crate::bignum::factorial_big;
        let t = table1_extended(12, 14);
        assert_eq!(t.len(), 12);
        assert_eq!(t[0].len(), 13);
        // Lower triangle is k!.
        assert_eq!(t[11][2], factorial_big(4)); // d=12, k=4: d >= k-1
    }
}
