//! # dp-theory — exact counts, bounds and constructions
//!
//! The theoretical results of *Counting distance permutations* (Skala,
//! SISAP'08 / JDA 2009), as executable code:
//!
//! * [`cake`] — Price's classical hyperplane cake-cutting numbers S_d(m),
//!   the scaffolding for every upper bound in the paper;
//! * [`euclidean`] — Theorem 7's exact recurrence N_{d,2}(k) and the
//!   generator for the paper's **Table 1**; Corollary 8's bounds;
//! * [`tree`] — Theorem 4's bound C(k,2)+1 for tree metrics;
//! * [`bounds`] — Theorem 9's piecewise-linear-bisector bounds for L1/L∞
//!   and the dimension threshold of Theorem 6;
//! * [`storage`] — the storage-space analysis of §1/§4: LAESA's
//!   O(nk log n) bits vs unrestricted permutations' O(nk log k) bits vs the
//!   paper's Θ(nd log k) bits via a permutation codebook;
//! * [`construction`] — the two explicit constructions: Theorem 6's k sites
//!   in (k−1)-space realising **all k! permutations** (with witness points
//!   recovered by the proof's own monotone sweep), and Corollary 5's path
//!   achieving the tree bound exactly;
//! * [`bignum`] — arbitrary-precision naturals so the exact recurrence can
//!   run past `u128` (k ≳ 34), powering the extended Table 1;
//! * [`prefixes`] — ceilings for *truncated* permutations (top-ℓ
//!   prefixes): combinatorial falling-factorial bounds meeting the
//!   geometric N_{d,2}(k) ceiling.

#![forbid(unsafe_code)]

pub mod bignum;
pub mod bounds;
pub mod cake;
pub mod construction;
pub mod euclidean;
pub mod prefixes;
pub mod storage;
pub mod tree;

pub use bignum::BigNat;
pub use bounds::{l1_bound, linf_bound, min_dimension_for_all_permutations};
pub use cake::cake_pieces;
pub use construction::{corollary5_path, theorem6_sites, theorem6_witnesses};
pub use euclidean::{n_euclidean, n_euclidean_big, table1, table1_extended, Table1};
pub use prefixes::{falling_factorial, ordered_prefix_bound, unordered_prefix_bound};
pub use tree::tree_bound;
