//! Price's hyperplane "cake-cutting" numbers.
//!
//! S_d(m) is the maximum number of pieces into which m hyperplanes of
//! dimension d−1 in general position cut d-dimensional Euclidean space.
//! Price's recurrence (cited as \[23\] in the paper):
//!
//! ```text
//! S_d(0) = S_0(m) = 1
//! S_d(m) = S_d(m-1) + S_{d-1}(m-1)
//! ```
//!
//! with the closed form S_d(m) = Σ_{i=0}^{d} C(m,i) = Θ(m^d).  The paper
//! uses these as the outer bound for every bisector-arrangement count.

/// Binomial coefficient C(n, k) with overflow checking.
pub fn binomial(n: u64, k: u64) -> Option<u128> {
    if k > n {
        return Some(0);
    }
    let k = k.min(n - k);
    let mut result: u128 = 1;
    for i in 0..k {
        result = result.checked_mul((n - i) as u128)?;
        result /= (i + 1) as u128;
    }
    Some(result)
}

/// S_d(m) via the closed form Σ_{i=0}^{d} C(m,i); `None` on u128 overflow.
pub fn cake_pieces(d: u32, m: u64) -> Option<u128> {
    let mut total: u128 = 0;
    for i in 0..=u64::from(d) {
        total = total.checked_add(binomial(m, i)?)?;
    }
    Some(total)
}

/// S_d(m) by Price's recurrence — O(d·m) time, used to cross-check the
/// closed form in tests.
pub fn cake_pieces_recurrence(d: u32, m: u64) -> Option<u128> {
    let d = d as usize;
    let m = m as usize;
    // row[j] = S_j(current m)
    let mut row: Vec<u128> = vec![1; d + 1];
    for _ in 1..=m {
        // S_d(m) = S_d(m-1) + S_{d-1}(m-1): sweep from high d downwards so
        // each slot still holds the previous-m value when read.
        for j in (1..=d).rev() {
            row[j] = row[j].checked_add(row[j - 1])?;
        }
        row[0] = 1;
    }
    Some(row[d])
}

/// log₂ S_d(m), computed in floating point for values beyond u128.
pub fn cake_pieces_log2(d: u32, m: u64) -> f64 {
    // log2 of a sum via the max term plus a correction.
    let terms: Vec<f64> = (0..=u64::from(d)).map(|i| binomial_log2(m, i)).collect();
    let max = terms.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
    if max == f64::NEG_INFINITY {
        return 0.0;
    }
    let sum: f64 = terms.iter().map(|t| (t - max).exp2()).sum();
    max + sum.log2()
}

/// log₂ C(n, k) via lgamma-free products (exact enough for bound tables).
pub fn binomial_log2(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    let k = k.min(n - k);
    let mut log = 0.0f64;
    for i in 0..k {
        log += ((n - i) as f64).log2() - ((i + 1) as f64).log2();
    }
    log
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_basics() {
        assert_eq!(binomial(5, 2), Some(10));
        assert_eq!(binomial(10, 0), Some(1));
        assert_eq!(binomial(10, 10), Some(1));
        assert_eq!(binomial(4, 7), Some(0));
        assert_eq!(binomial(52, 5), Some(2_598_960));
    }

    #[test]
    fn cake_small_values() {
        // The classical lazy-caterer sequence in 2-D: 1, 2, 4, 7, 11, 16.
        for (m, expected) in [(0u64, 1u128), (1, 2), (2, 4), (3, 7), (4, 11), (5, 16)] {
            assert_eq!(cake_pieces(2, m), Some(expected), "m={m}");
        }
        // The 3-D cake numbers: 1, 2, 4, 8, 15, 26.
        for (m, expected) in [(0u64, 1u128), (1, 2), (2, 4), (3, 8), (4, 15), (5, 26)] {
            assert_eq!(cake_pieces(3, m), Some(expected), "m={m}");
        }
    }

    #[test]
    fn one_dimension_is_m_plus_one() {
        for m in 0..50u64 {
            assert_eq!(cake_pieces(1, m), Some(u128::from(m) + 1));
        }
    }

    #[test]
    fn zero_dimension_is_always_one() {
        for m in 0..10u64 {
            assert_eq!(cake_pieces(0, m), Some(1));
        }
    }

    #[test]
    fn high_dimension_saturates_at_2_pow_m() {
        // With d >= m every subset of hyperplanes bounds a piece: 2^m.
        for m in 0..20u64 {
            assert_eq!(cake_pieces(m as u32, m), Some(1u128 << m));
            assert_eq!(cake_pieces(m as u32 + 5, m), Some(1u128 << m));
        }
    }

    #[test]
    fn closed_form_matches_recurrence() {
        for d in 0..6u32 {
            for m in 0..40u64 {
                assert_eq!(cake_pieces(d, m), cake_pieces_recurrence(d, m), "d={d} m={m}");
            }
        }
    }

    #[test]
    fn log2_matches_exact_for_moderate_values() {
        for d in 1..5u32 {
            for m in 1..30u64 {
                let exact = cake_pieces(d, m).unwrap() as f64;
                let log = cake_pieces_log2(d, m);
                assert!(
                    (log - exact.log2()).abs() < 1e-9,
                    "d={d} m={m}: {log} vs {}",
                    exact.log2()
                );
            }
        }
    }

    #[test]
    fn growth_is_polynomial_in_m() {
        // S_d(2m)/S_d(m) should approach 2^d for large m.
        let d = 3u32;
        let big = cake_pieces(d, 4000).unwrap() as f64;
        let half = cake_pieces(d, 2000).unwrap() as f64;
        let ratio = big / half;
        assert!((ratio - 8.0).abs() < 0.1, "ratio {ratio}");
    }
}
