//! The paper's two explicit constructions.
//!
//! **Theorem 6** — k sites in (k−1)-dimensional Lp space realising all k!
//! distance permutations near the origin.  The sites are built by the
//! proof's induction: two sites at ±1 on the first axis, then each new site
//! k goes on a fresh axis at distance 1+ε/4 while ε shrinks by 4.  Witness
//! points are recovered the way the proof finds them: sliding the new
//! coordinate z from −ε/2 (site k farthest) to 3ε/4 (site k nearest) moves
//! site k monotonically through every position, so a bisection on z lands
//! it wherever the target permutation demands.
//!
//! **Corollary 5** — a path of 2^(k−1) unit edges with sites at labels
//! 0, 2, 4, 8, …, 2^(k−1) realising exactly C(k,2)+1 distance permutations
//! (the Theorem 4 maximum for tree metrics).

use dp_metric::{Metric, Tree};
use dp_permutation::{DistPermComputer, Permutation};

/// The Theorem 6 sites: k points in (k−1)-dimensional space.
///
/// `eps` must lie in (0, 1/2) — the L∞ case of the proof (Note 1) requires
/// ε < 1/2, and the statement for smaller ε implies it for larger.
///
/// # Panics
/// Panics if `k < 2`, `k > 20`, or `eps` out of range.
pub fn theorem6_sites(k: usize, eps: f64) -> Vec<Vec<f64>> {
    assert!(k >= 2, "need at least two sites");
    assert!(k <= 20, "k = {k} would enumerate k! > 2.4e18 permutations");
    assert!(eps > 0.0 && eps < 0.5, "eps must be in (0, 1/2), got {eps}");
    // eps at recursion level j (building site j+1) is eps / 4^(k-j).
    let mut sites: Vec<Vec<f64>> = vec![vec![-1.0], vec![1.0]];
    let mut level_eps = eps / 4f64.powi(k as i32 - 2);
    for j in 3..=k {
        level_eps *= 4.0;
        for s in &mut sites {
            s.push(0.0);
        }
        let mut new_site = vec![0.0; j - 1];
        new_site[j - 2] = 1.0 + level_eps / 4.0;
        sites.push(new_site);
    }
    sites
}

/// A witness point for every one of the k! permutations, paired with its
/// permutation, under `metric`.
///
/// Every returned pair `(π, y)` satisfies `Π_y = π` — the function panics
/// otherwise, so a successful return *is* the Theorem 6 verification.
pub fn theorem6_witnesses<M>(k: usize, eps: f64, metric: &M) -> Vec<(Permutation, Vec<f64>)>
where
    M: Metric<[f64]>,
{
    assert!((2..=8).contains(&k), "enumerating k! witnesses is intended for 2 <= k <= 8");
    let sites = theorem6_sites(k, eps);
    let mut computer = DistPermComputer::new(k);
    let site_slices: Vec<&[f64]> = sites.iter().map(std::vec::Vec::as_slice).collect();

    let mut out = Vec::new();
    for target in Permutation::all(k) {
        let y = witness_for(&site_slices, target, eps, metric, &mut computer);
        out.push((target, y));
    }
    out
}

/// Recursively constructs a witness for `target` following the proof.
fn witness_for<M>(
    sites: &[&[f64]],
    target: Permutation,
    eps: f64,
    metric: &M,
    computer: &mut DistPermComputer<M::Dist>,
) -> Vec<f64>
where
    M: Metric<[f64]>,
{
    let k = target.len();
    if k == 2 {
        // Basis case: y_12 = <-eps/2>, y_21 = <eps/2>.
        return if target.get(0) == 0 { vec![-eps / 2.0] } else { vec![eps / 2.0] };
    }

    // Strip the last site (index k-1) from the target permutation.
    let reduced_items: Vec<u8> =
        target.as_slice().iter().copied().filter(|&e| e != (k - 1) as u8).collect();
    let reduced =
        Permutation::from_slice(&reduced_items).expect("removing one element keeps validity");
    let reduced_sites: Vec<&[f64]> = sites[..k - 1].iter().map(|s| &s[..k - 2]).collect();
    let mut reduced_computer = DistPermComputer::new(k - 1);
    let base = witness_for(&reduced_sites, reduced, eps / 4.0, metric, &mut reduced_computer);

    // Slide the new coordinate z in [-eps/2, 3eps/4]; the position of site
    // k-1 in the distance permutation moves monotonically from last (k-1)
    // to first (0).  Bisect to the position `target` requires.
    let target_pos = target.position_of((k - 1) as u8).expect("target contains every site index");
    let mut y = base;
    y.push(0.0);
    let zi = y.len() - 1;

    let range_lo = -eps / 2.0;
    let range_hi = 3.0 * eps / 4.0;
    let mut pos_at = |y: &mut Vec<f64>, z: f64| {
        y[zi] = z;
        let perm = compute_on_slices(computer, metric, sites, y);
        perm.position_of((k - 1) as u8).expect("site present")
    };

    // Phase 1: locate any z whose position equals target_pos.  The
    // position is monotone non-increasing in z (the proof's sweep), from
    // k-1 at range_lo to 0 at range_hi.
    let mut lo = range_lo;
    let mut hi = range_hi;
    let mut found = None;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        let pos = pos_at(&mut y, mid);
        match pos.cmp(&target_pos) {
            std::cmp::Ordering::Equal => {
                found = Some(mid);
                break;
            }
            std::cmp::Ordering::Greater => lo = mid, // site k-1 still too far
            std::cmp::Ordering::Less => hi = mid,
        }
    }
    let found = found.unwrap_or_else(|| {
        panic!("bisection failed to place site {k} at position {target_pos} for {target}")
    });

    // Phase 2: centre z inside the target interval.  A first-hit z can sit
    // arbitrarily close to a cell boundary, and a near-boundary witness
    // makes two site distances nearly equal — which collapses the *next*
    // level's target interval below f64 resolution.  Centring restores the
    // proof's invariant (4) with a healthy margin at every level.
    let (mut a, mut b) = (range_lo, found);
    for _ in 0..80 {
        let mid = 0.5 * (a + b);
        if pos_at(&mut y, mid) == target_pos {
            b = mid;
        } else {
            a = mid;
        }
    }
    let lower_edge = b;
    let (mut a, mut b) = (found, range_hi);
    for _ in 0..80 {
        let mid = 0.5 * (a + b);
        if pos_at(&mut y, mid) == target_pos {
            a = mid;
        } else {
            b = mid;
        }
    }
    let upper_edge = a;

    y[zi] = 0.5 * (lower_edge + upper_edge);
    let perm = compute_on_slices(computer, metric, sites, &y);
    assert_eq!(perm, target, "construction invariant violated at z={} for {target}", y[zi]);
    y
}

fn compute_on_slices<M>(
    computer: &mut DistPermComputer<M::Dist>,
    metric: &M,
    sites: &[&[f64]],
    y: &[f64],
) -> Permutation
where
    M: Metric<[f64]>,
{
    // DistPermComputer wants a uniform point type; adapt through an
    // indirection metric over indices into a temporary arena.
    struct Slices<'a, M> {
        metric: &'a M,
    }
    impl<M: Metric<[f64]>> Metric<&[f64]> for Slices<'_, M> {
        type Dist = M::Dist;
        fn distance(&self, a: &&[f64], b: &&[f64]) -> M::Dist {
            self.metric.distance(a, b)
        }
    }
    let adapter = Slices { metric };
    let all: Vec<&[f64]> = sites.to_vec();
    computer.compute(&adapter, &all, &y)
}

/// The Corollary 5 configuration: the unit path of 2^(k−1) edges and the
/// site vertex labels 0, 2, 4, 8, …, 2^(k−1).
///
/// Counting distance permutations over *all* vertices of this tree yields
/// exactly C(k,2)+1 — verified in this module's tests and regenerated by
/// the `corollary5` bench binary.
pub fn corollary5_path(k: u32) -> (Tree, Vec<usize>) {
    assert!((1..=24).contains(&k), "k = {k} out of supported range");
    let edges = crate::tree::corollary5_path_edges(k);
    let tree = Tree::path(edges as usize);
    let sites = crate::tree::corollary5_site_labels(k).into_iter().map(|s| s as usize).collect();
    (tree, sites)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_metric::{LInf, L1, L2};
    use dp_permutation::counter::count_distinct;

    #[test]
    fn sites_have_expected_shape() {
        let sites = theorem6_sites(5, 0.25);
        assert_eq!(sites.len(), 5);
        for s in &sites {
            assert_eq!(s.len(), 4);
        }
        assert_eq!(sites[0], vec![-1.0, 0.0, 0.0, 0.0]);
        assert_eq!(sites[1], vec![1.0, 0.0, 0.0, 0.0]);
        // Site j (j >= 3) sits on axis j-2 at 1 + eps_j/4.
        assert_eq!(sites[4][3], 1.0 + 0.25 / 4.0);
        assert!(sites[2][1] > 1.0 && sites[2][1] < 1.01);
    }

    #[test]
    fn witnesses_realise_all_permutations_l2() {
        for k in 2..=5usize {
            let witnesses = theorem6_witnesses(k, 0.25, &L2);
            let expected: usize = (1..=k).product();
            assert_eq!(witnesses.len(), expected, "k={k}");
            // witness_for already panics on mismatch; double-check
            // distinctness of permutations.
            let distinct: std::collections::HashSet<_> =
                witnesses.iter().map(|(p, _)| *p).collect();
            assert_eq!(distinct.len(), expected);
        }
    }

    #[test]
    fn witnesses_realise_all_permutations_l1_and_linf() {
        for k in 2..=5usize {
            assert_eq!(theorem6_witnesses(k, 0.2, &L1).len(), (1..=k).product());
            assert_eq!(theorem6_witnesses(k, 0.2, &LInf).len(), (1..=k).product());
        }
    }

    #[test]
    fn witnesses_realise_all_permutations_general_lp() {
        // Theorem 6 claims every Lp, p >= 1 — not just the three special
        // cases; exercise fractional and large exponents.
        use dp_metric::Lp;
        for p in [1.5f64, 3.0, 7.0] {
            for k in 2..=4usize {
                assert_eq!(
                    theorem6_witnesses(k, 0.2, &Lp::new(p)).len(),
                    (1..=k).product::<usize>(),
                    "p={p} k={k}"
                );
            }
        }
    }

    #[test]
    fn witnesses_stay_near_origin() {
        // Invariant (2) of the proof: d(0, y) < eps.
        let eps = 0.3;
        for (_, y) in theorem6_witnesses(4, eps, &L2) {
            let norm = y.iter().map(|v| v * v).sum::<f64>().sqrt();
            assert!(norm < eps, "witness at norm {norm}");
        }
    }

    #[test]
    fn witnesses_near_unit_distance_from_sites() {
        // Invariant (3): |1 - d(x_i, y)| < eps.
        let eps = 0.3;
        let sites = theorem6_sites(4, eps);
        for (_, y) in theorem6_witnesses(4, eps, &L2) {
            for s in &sites {
                let d = L2.distance(&s[..], &y[..]).get();
                assert!((1.0 - d).abs() < eps, "site distance {d}");
            }
        }
    }

    #[test]
    fn six_sites_realise_720_permutations() {
        let witnesses = theorem6_witnesses(6, 0.25, &L2);
        assert_eq!(witnesses.len(), 720);
    }

    #[test]
    fn corollary5_achieves_tree_bound_exactly() {
        for k in 2..=9u32 {
            let (tree, sites) = corollary5_path(k);
            let metric = tree.metric();
            let db: Vec<usize> = tree.vertices().collect();
            let count = count_distinct(&metric, &sites, &db);
            assert_eq!(count as u128, crate::tree::tree_bound(k), "k={k}: expected C(k,2)+1");
        }
    }

    #[test]
    fn corollary5_sites_are_vertices() {
        let (tree, sites) = corollary5_path(6);
        assert_eq!(sites.len(), 6);
        for &s in &sites {
            assert!(s < tree.len());
        }
    }

    #[test]
    #[should_panic(expected = "eps")]
    fn eps_half_rejected() {
        let _ = theorem6_sites(3, 0.5);
    }
}
