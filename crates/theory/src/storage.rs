//! The storage-space comparison of §1/§4.
//!
//! The chain of improvements the paper traces, in bits per database
//! element for n elements, k sites/pivots, d dimensions:
//!
//! | scheme | bits/element | total |
//! |---|---|---|
//! | AESA (full matrix) | n·b | O(n²) distances |
//! | LAESA (k pivot distances) | k·⌈log₂ n⌉ | O(nk log n) |
//! | distance permutation, unrestricted | ⌈log₂ k!⌉ | O(nk log k) |
//! | positional packing | k·⌈log₂ k⌉ | O(nk log k) |
//! | **codebook (this paper, Euclidean)** | ⌈log₂ N_{d,2}(k)⌉ | **Θ(nd log k)** |
//!
//! (LAESA's log n term follows the paper's accounting: distances stored to
//! the precision needed to discriminate n objects.)

use crate::euclidean::n_euclidean;

/// Per-element storage costs, in bits, for one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageRow {
    /// Dimension of the (Euclidean) space.
    pub d: u32,
    /// Number of sites / pivots.
    pub k: u32,
    /// Database size used for LAESA's distance precision.
    pub n: u64,
    /// LAESA: k distances at ⌈log₂ n⌉ bits each.
    pub laesa_bits: u64,
    /// Unrestricted permutation rank: ⌈log₂ k!⌉.
    pub full_perm_bits: u32,
    /// Positional packing: k·⌈log₂ k⌉.
    pub packed_bits: u32,
    /// Codebook id: ⌈log₂ N_{d,2}(k)⌉ (the paper's Θ(d log k) result).
    pub codebook_bits: u32,
}

fn ceil_log2_u128(v: u128) -> u32 {
    if v <= 1 {
        0
    } else {
        128 - (v - 1).leading_zeros()
    }
}

fn ceil_log2_u64(v: u64) -> u32 {
    if v <= 1 {
        0
    } else {
        64 - (v - 1).leading_zeros()
    }
}

/// ⌈log₂ k!⌉ without overflow (works for any k via summed logs when needed).
pub fn log2_factorial_ceil(k: u32) -> u32 {
    if k <= 33 {
        let f: u128 = (1..=u128::from(k)).product();
        ceil_log2_u128(f)
    } else {
        (1..=u64::from(k)).map(|i| (i as f64).log2()).sum::<f64>().ceil() as u32
    }
}

/// Computes all storage costs for one `(d, k, n)` configuration.
///
/// # Panics
/// Panics if N_{d,2}(k) overflows u128 (far outside any practical range).
pub fn storage_row(d: u32, k: u32, n: u64) -> StorageRow {
    let n_perms = n_euclidean(d, k).expect("N_{d,2}(k) fits in u128");
    StorageRow {
        d,
        k,
        n,
        laesa_bits: u64::from(k) * u64::from(ceil_log2_u64(n)),
        full_perm_bits: log2_factorial_ceil(k),
        packed_bits: k * ceil_log2_u64(u64::from(k)),
        codebook_bits: ceil_log2_u128(n_perms),
    }
}

/// Renders a storage comparison table over the given d and k ranges.
pub fn render_table(ds: &[u32], ks: &[u32], n: u64) -> String {
    let mut out = String::new();
    out.push_str(&format!("bits per element (n = {n}): LAESA | perm-rank | packed | codebook\n"));
    for &d in ds {
        for &k in ks {
            let r = storage_row(d, k, n);
            out.push_str(&format!(
                "d={d:>2} k={k:>2}: {:>6} | {:>9} | {:>6} | {:>8}\n",
                r.laesa_bits, r.full_perm_bits, r.packed_bits, r.codebook_bits
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_factorial_values() {
        assert_eq!(log2_factorial_ceil(0), 0);
        assert_eq!(log2_factorial_ceil(1), 0);
        assert_eq!(log2_factorial_ceil(2), 1);
        assert_eq!(log2_factorial_ceil(4), 5);
        assert_eq!(log2_factorial_ceil(12), 29);
        // Large-k path uses the floating sum; compare against the exact
        // u128 value at the boundary.
        assert_eq!(log2_factorial_ceil(33), 123);
        assert!(log2_factorial_ceil(64) > 200);
    }

    #[test]
    fn codebook_beats_full_permutation_in_low_dimension() {
        // The paper's headline: for fixed d, codebook bits grow as d log k
        // while the unrestricted rank grows as k log k.
        for k in [8u32, 12, 16, 24] {
            let r = storage_row(2, k, 1_000_000);
            assert!(
                r.codebook_bits < r.full_perm_bits,
                "k={k}: {} >= {}",
                r.codebook_bits,
                r.full_perm_bits
            );
        }
    }

    #[test]
    fn codebook_matches_full_permutation_in_high_dimension() {
        // With d >= k-1 all k! permutations occur; the codebook saves
        // nothing (Theorem 6 limits what permutation storage can achieve).
        let r = storage_row(11, 12, 1_000_000);
        assert_eq!(r.codebook_bits, r.full_perm_bits);
    }

    #[test]
    fn laesa_dominates_all_permutation_schemes() {
        // The storage motivation of the paper: permutations always beat
        // storing k quantised distances.
        for (d, k) in [(2u32, 8u32), (4, 12), (6, 10)] {
            let r = storage_row(d, k, 1_000_000);
            assert!(r.laesa_bits > u64::from(r.full_perm_bits));
            assert!(r.laesa_bits > u64::from(r.codebook_bits));
        }
    }

    #[test]
    fn storage_row_field_formulas() {
        let r = storage_row(3, 12, 1 << 20);
        assert_eq!(r.laesa_bits, 12 * 20);
        assert_eq!(r.packed_bits, 12 * 4);
        assert_eq!(r.full_perm_bits, 29);
        // N_{3,2}(12) = 34662 -> 16 bits.
        assert_eq!(r.codebook_bits, 16);
    }

    #[test]
    fn render_contains_rows() {
        let s = render_table(&[1, 2], &[4, 8], 1024);
        assert!(s.contains("d= 1 k= 4"));
        assert!(s.contains("d= 2 k= 8"));
    }
}
