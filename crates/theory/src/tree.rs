//! Theorem 4: tree metrics admit at most C(k,2)+1 distance permutations.
//!
//! Every bisector in a tree is realised by a single cut edge, and cutting
//! C(k,2) edges leaves at most C(k,2)+1 components — each component being
//! one distance-permutation cell.

use crate::cake::binomial;

/// The Theorem 4 bound: C(k,2) + 1.
pub fn tree_bound(k: u32) -> u128 {
    binomial(u64::from(k), 2).expect("C(k,2) fits in u128") + 1
}

/// Length (in edges) of the path Corollary 5 uses to achieve the bound:
/// 2^(k-1).
///
/// # Panics
/// Panics if `k > 40` (the path would not fit in memory anyway).
pub fn corollary5_path_edges(k: u32) -> u64 {
    assert!(k <= 40, "corollary 5 path for k={k} is astronomically large");
    1u64 << (k - 1)
}

/// The site labels of Corollary 5: 0, 2, 4, 8, …, 2^(k-1).
pub fn corollary5_site_labels(k: u32) -> Vec<u64> {
    assert!(k >= 1);
    let mut sites = Vec::with_capacity(k as usize);
    sites.push(0);
    for i in 1..k {
        sites.push(1u64 << i);
    }
    sites
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_values() {
        assert_eq!(tree_bound(1), 1);
        assert_eq!(tree_bound(2), 2);
        assert_eq!(tree_bound(3), 4);
        assert_eq!(tree_bound(4), 7);
        assert_eq!(tree_bound(12), 67);
    }

    #[test]
    fn tree_bound_equals_euclidean_1d() {
        // The paper notes N_{1,2}(k) = C(k,2)+1 = the tree bound.
        for k in 1..=20u32 {
            assert_eq!(tree_bound(k), crate::euclidean::n_euclidean(1, k).unwrap());
        }
    }

    #[test]
    fn corollary5_shapes() {
        assert_eq!(corollary5_path_edges(2), 2);
        assert_eq!(corollary5_path_edges(5), 16);
        assert_eq!(corollary5_site_labels(4), vec![0, 2, 4, 8]);
        assert_eq!(corollary5_site_labels(1), vec![0]);
    }

    #[test]
    fn sites_fit_on_path() {
        for k in 1..=16u32 {
            let edges = corollary5_path_edges(k);
            for &s in &corollary5_site_labels(k) {
                assert!(s <= edges, "site {s} beyond path of {edges} edges");
            }
        }
    }
}
