//! Theorem 9 (L1/L∞ upper bounds) and Theorem 6 (dimension threshold).
//!
//! For p ∈ {1, ∞} each bisector is contained in a union of flat
//! hyperplanes whose number depends only on the dimension d:
//!
//! * L1:  each distance is one of 2^d signed linear forms, so a bisector
//!   lies in ≤ 2^d · 2^d = 2^{2d} hyperplanes;
//! * L∞:  each distance is one of 2d signed forms, giving ≤ 4d²
//!   hyperplanes.
//!
//! Replacing every bisector by its full hyperplane set and assuming general
//! position can only increase the number of cells, so N_{d,p}(k) is at most
//! S_d(h(d)·C(k,2)) — all O(k^{2d}) for constant d.

use crate::cake::{binomial, cake_pieces, cake_pieces_log2};

/// Hyperplanes per bisector in d-dimensional L1 space: 2^{2d}.
pub fn l1_hyperplanes_per_bisector(d: u32) -> Option<u128> {
    1u128.checked_shl(2 * d)
}

/// Hyperplanes per bisector in d-dimensional L∞ space: 4d².
pub fn linf_hyperplanes_per_bisector(d: u32) -> u128 {
    4 * u128::from(d) * u128::from(d)
}

/// Theorem 9 bound for L1: S_d(2^{2d} · C(k,2)); `None` on overflow.
pub fn l1_bound(d: u32, k: u32) -> Option<u128> {
    let per = l1_hyperplanes_per_bisector(d)?;
    let m = per.checked_mul(binomial(u64::from(k), 2)?)?;
    cake_pieces(d, u64::try_from(m).ok()?)
}

/// Theorem 9 bound for L∞: S_d(4d² · C(k,2)); `None` on overflow.
pub fn linf_bound(d: u32, k: u32) -> Option<u128> {
    let m = linf_hyperplanes_per_bisector(d).checked_mul(binomial(u64::from(k), 2)?)?;
    cake_pieces(d, u64::try_from(m).ok()?)
}

/// log₂ of the Theorem 9 L1 bound — usable far beyond u128 range.
pub fn l1_bound_log2(d: u32, k: u32) -> f64 {
    let m = (2.0f64.powi(2 * d as i32)) * (f64::from(k) * (f64::from(k) - 1.0) / 2.0);
    cake_pieces_log2(d, m as u64)
}

/// Theorem 6: the minimum dimension in which k sites can realise all k!
/// distance permutations is k − 1 (for any Lp metric).
pub fn min_dimension_for_all_permutations(k: u32) -> u32 {
    k.saturating_sub(1)
}

/// True iff Theorem 6 applies: in dimension `d` with `k` sites all k!
/// permutations are achievable (d ≥ k−1).
pub fn all_permutations_achievable(d: u32, k: u32) -> bool {
    d >= min_dimension_for_all_permutations(k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::euclidean::n_euclidean;

    #[test]
    fn hyperplane_counts() {
        assert_eq!(l1_hyperplanes_per_bisector(2), Some(16));
        assert_eq!(l1_hyperplanes_per_bisector(3), Some(64));
        assert_eq!(linf_hyperplanes_per_bisector(2), 16);
        assert_eq!(linf_hyperplanes_per_bisector(3), 36);
    }

    #[test]
    fn theorem9_bounds_dominate_euclidean_exact() {
        // The L1/L∞ bounds are loose in d, but must dominate the exact
        // Euclidean count (the same arrangement argument with more planes).
        for d in 1..=4u32 {
            for k in 2..=10u32 {
                let e = n_euclidean(d, k).unwrap();
                let b1 = l1_bound(d, k).unwrap();
                let binf = linf_bound(d, k).unwrap();
                assert!(b1 >= e, "L1 bound d={d} k={k}");
                assert!(binf >= e, "Linf bound d={d} k={k}");
            }
        }
    }

    #[test]
    fn theorem9_exceeds_known_l1_counterexample() {
        // §5: 108 distance permutations observed in 3-D L1 with k=5; the
        // Theorem 9 bound must (easily) accommodate that.
        let bound = l1_bound(3, 5).unwrap();
        assert!(bound >= 108, "bound {bound}");
    }

    #[test]
    fn one_dimensional_bisectors_are_single_points() {
        // In d=1, all Lp metrics coincide; the bounds still apply.
        for k in 2..=12u32 {
            assert!(l1_bound(1, k).unwrap() >= n_euclidean(1, k).unwrap());
        }
    }

    #[test]
    fn bounds_grow_as_k_2d_for_constant_d() {
        // Doubling k should multiply the d=2 bound by about 2^{2d} = 16.
        let small = l1_bound(2, 64).unwrap() as f64;
        let big = l1_bound(2, 128).unwrap() as f64;
        let ratio = big / small;
        assert!((ratio - 16.0).abs() < 1.0, "ratio {ratio}");
    }

    #[test]
    fn log2_version_tracks_exact() {
        for d in 1..=3u32 {
            for k in [4u32, 8, 16] {
                let exact = l1_bound(d, k).unwrap() as f64;
                let log = l1_bound_log2(d, k);
                assert!(
                    (log - exact.log2()).abs() < 0.01,
                    "d={d} k={k}: {log} vs {}",
                    exact.log2()
                );
            }
        }
    }

    #[test]
    fn theorem6_threshold() {
        assert_eq!(min_dimension_for_all_permutations(1), 0);
        assert_eq!(min_dimension_for_all_permutations(4), 3);
        assert!(all_permutations_achievable(3, 4));
        assert!(!all_permutations_achievable(2, 4));
        // Matches the factorial triangle of Table 1.
        for k in 2..=8u32 {
            let fact: u128 = (1..=u128::from(k)).product();
            assert_eq!(n_euclidean(min_dimension_for_all_permutations(k), k), Some(fact));
        }
    }
}
