//! Bounds on *truncated* distance permutations (top-ℓ prefixes).
//!
//! Section 2 presents the distance-permutation cells as the common
//! refinement of every order of Voronoi diagram: the length-1 prefix is
//! the classical nearest-neighbour diagram (Fig 1), unordered length-2
//! prefixes give the second-order diagram (Fig 2), and length-k recovers
//! the full bisector arrangement (Fig 3).  Indexes that store only a
//! prefix (`dp-index`'s truncated `distperm`, after Chávez–Figueroa–
//! Navarro) therefore admit two independent ceilings on how many distinct
//! keys can occur:
//!
//! 1. **combinatorial** — an ordered ℓ-prefix is an ℓ-arrangement of k
//!    sites, so at most k·(k−1)···(k−ℓ+1) (the falling factorial); an
//!    unordered one at most C(k,ℓ);
//! 2. **geometric** — every prefix class is a union of full-permutation
//!    cells, so the space's N_{d,p}(k) ceiling applies unchanged.
//!
//! The usable bound is the minimum of the two; these functions package
//! that for the Euclidean exact count (Theorem 7).

use crate::cake::binomial;
use crate::euclidean::n_euclidean;

/// Falling factorial k·(k−1)···(k−ℓ+1): the number of ordered ℓ-prefixes
/// of k sites, ignoring geometry; `None` on u128 overflow.
///
/// `falling_factorial(k, 0)` = 1 (the empty prefix).
pub fn falling_factorial(k: u32, l: u32) -> Option<u128> {
    if l > k {
        return Some(0);
    }
    let mut acc: u128 = 1;
    for i in 0..u128::from(l) {
        acc = acc.checked_mul(u128::from(k) - i)?;
    }
    Some(acc)
}

/// Upper bound on distinct **ordered** ℓ-prefixes of distance
/// permutations of k sites in d-dimensional Euclidean space:
/// min(falling factorial, N_{d,2}(k)); `None` if both sides overflow.
pub fn ordered_prefix_bound(d: u32, k: u32, l: u32) -> Option<u128> {
    let comb = falling_factorial(k, l);
    let geom = n_euclidean(d, k);
    match (comb, geom) {
        (Some(c), Some(g)) => Some(c.min(g)),
        (Some(c), None) => Some(c),
        (None, Some(g)) => Some(g),
        (None, None) => None,
    }
}

/// Upper bound on distinct **unordered** ℓ-prefixes (order-ℓ Voronoi
/// cells occupied, Fig 2): min(C(k,ℓ), N_{d,2}(k)).
pub fn unordered_prefix_bound(d: u32, k: u32, l: u32) -> Option<u128> {
    let comb = binomial(u64::from(k), u64::from(l));
    let geom = n_euclidean(d, k);
    match (comb, geom) {
        (Some(c), Some(g)) => Some(c.min(g)),
        (Some(c), None) => Some(c),
        (None, Some(g)) => Some(g),
        (None, None) => None,
    }
}

/// Bits to store an ordered ℓ-prefix under the codebook strategy:
/// ⌈log₂ ordered_prefix_bound⌉.
pub fn prefix_storage_bits(d: u32, k: u32, l: u32) -> Option<u32> {
    let n = ordered_prefix_bound(d, k, l)?;
    Some(if n <= 1 { 0 } else { 128 - (n - 1).leading_zeros() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn falling_factorial_values() {
        assert_eq!(falling_factorial(5, 0), Some(1));
        assert_eq!(falling_factorial(5, 1), Some(5));
        assert_eq!(falling_factorial(5, 2), Some(20));
        assert_eq!(falling_factorial(5, 5), Some(120));
        assert_eq!(falling_factorial(4, 5), Some(0));
        assert_eq!(falling_factorial(12, 12), Some(479001600));
    }

    #[test]
    fn full_length_ordered_bound_is_table1_entry() {
        // At ℓ = k the combinatorial side is k!, so the bound is exactly
        // min(k!, N_{d,2}(k)) = N_{d,2}(k) (N never exceeds k!).
        for d in 1..=6u32 {
            for k in 2..=10u32 {
                assert_eq!(ordered_prefix_bound(d, k, k), n_euclidean(d, k), "d={d} k={k}");
            }
        }
    }

    #[test]
    fn length_one_bound_is_k() {
        // The nearest-neighbour Voronoi diagram of k sites has exactly k
        // cells (in any dimension >= 1), and the bound reflects it.
        for k in 2..=12u32 {
            assert_eq!(ordered_prefix_bound(3, k, 1), Some(u128::from(k)));
            assert_eq!(unordered_prefix_bound(3, k, 1), Some(u128::from(k)));
        }
    }

    #[test]
    fn low_dimension_geometry_caps_the_combinatorics() {
        // d = 1, k = 12: only C(12,2)+1 = 67 cells exist, far below the
        // 12·11·10 = 1320 combinatorial prefixes of length 3.
        assert_eq!(ordered_prefix_bound(1, 12, 3), Some(67));
        assert_eq!(falling_factorial(12, 3), Some(1320));
    }

    #[test]
    fn unordered_below_ordered() {
        for d in 1..=4u32 {
            for k in 2..=10u32 {
                for l in 1..=k {
                    let uo = unordered_prefix_bound(d, k, l).unwrap();
                    let or = ordered_prefix_bound(d, k, l).unwrap();
                    assert!(uo <= or, "d={d} k={k} l={l}");
                }
            }
        }
    }

    #[test]
    fn bounds_monotone_in_prefix_length() {
        // Longer ordered prefixes can only refine: the bound is
        // non-decreasing in ℓ.
        for k in 2..=10u32 {
            let mut prev = 0u128;
            for l in 1..=k {
                let b = ordered_prefix_bound(4, k, l).unwrap();
                assert!(b >= prev, "k={k} l={l}");
                prev = b;
            }
        }
    }

    #[test]
    fn prefix_storage_bits_examples() {
        // d=3, k=12, l=2: min(132, 34662) = 132 -> 8 bits, versus 16 for
        // the full permutation (Table 1's 34662).
        assert_eq!(prefix_storage_bits(3, 12, 2), Some(8));
        assert_eq!(prefix_storage_bits(3, 12, 12), Some(16));
        assert_eq!(prefix_storage_bits(3, 12, 0), Some(0));
    }
}
