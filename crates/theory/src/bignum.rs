//! Minimal arbitrary-precision naturals for counting past `u128`.
//!
//! Theorem 7's recurrence is exact for every (d, k), but its values pass
//! 2¹²⁸ around k ≈ 35 (N is close to k! once d ≥ k−1).  The workspace
//! policy (DESIGN.md §5) avoids non-approved dependencies, and the
//! recurrence needs only addition, multiplication by a small factor and
//! comparison — so this module implements exactly that: an unsigned
//! little-endian limb vector with schoolbook arithmetic, decimal
//! rendering, and a bit-length query for storage costs.  It is not a
//! general bignum; division only by the 10¹⁹ rendering base.

use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision natural number (unsigned).
///
/// Invariant: `limbs` is little-endian with no trailing zero limb; zero is
/// the empty vector.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BigNat {
    limbs: Vec<u64>,
}

impl BigNat {
    /// Zero.
    pub fn zero() -> Self {
        Self::default()
    }

    /// One.
    pub fn one() -> Self {
        Self::from(1u64)
    }

    /// True iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &Self) -> Self {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &l) in long.iter().enumerate() {
            let b = short.get(i).copied().unwrap_or(0);
            let (s1, c1) = l.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = u64::from(c1) + u64::from(c2);
        }
        if carry > 0 {
            out.push(carry);
        }
        let mut r = Self { limbs: out };
        r.normalize();
        r
    }

    /// `self * m` for a small (single-limb) multiplier.
    pub fn mul_u64(&self, m: u64) -> Self {
        if m == 0 || self.is_zero() {
            return Self::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u128;
        for &l in &self.limbs {
            let prod = u128::from(l) * u128::from(m) + carry;
            out.push(prod as u64);
            carry = prod >> 64;
        }
        while carry > 0 {
            out.push(carry as u64);
            carry >>= 64;
        }
        let mut r = Self { limbs: out };
        r.normalize();
        r
    }

    /// Schoolbook `self * other`.
    pub fn mul(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = u128::from(out[i + j]) + u128::from(a) * u128::from(b) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut idx = i + other.limbs.len();
            while carry > 0 {
                let cur = u128::from(out[idx]) + carry;
                out[idx] = cur as u64;
                carry = cur >> 64;
                idx += 1;
            }
        }
        let mut r = Self { limbs: out };
        r.normalize();
        r
    }

    /// `self^exp` by binary exponentiation.
    pub fn pow(&self, mut exp: u32) -> Self {
        let mut base = self.clone();
        let mut acc = Self::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = acc.mul(&base);
            }
            exp >>= 1;
            if exp > 0 {
                base = base.mul(&base);
            }
        }
        acc
    }

    /// Number of bits in the binary representation (0 for zero).
    ///
    /// `bit_len() − 1 < log₂(self) ≤ bit_len()`; the storage analyses use
    /// ⌈log₂ N⌉ = `(self − 1).bit_len()`, provided via [`Self::ceil_log2`].
    pub fn bit_len(&self) -> u64 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() as u64 - 1) * 64 + u64::from(64 - top.leading_zeros()),
        }
    }

    /// ⌈log₂ self⌉, the bits needed to index `self` distinct values.
    ///
    /// # Panics
    /// Panics on zero (no values to index).
    pub fn ceil_log2(&self) -> u64 {
        assert!(!self.is_zero(), "ceil_log2 of zero");
        if self.limbs == [1] {
            return 0;
        }
        // ⌈log₂ n⌉ = bit_len(n − 1) for n ≥ 2.
        let mut minus_one = self.clone();
        for limb in minus_one.limbs.iter_mut() {
            if *limb > 0 {
                *limb -= 1;
                break;
            }
            *limb = u64::MAX;
        }
        minus_one.normalize();
        minus_one.bit_len()
    }

    /// Approximate value as f64 (∞ if beyond range).
    pub fn to_f64(&self) -> f64 {
        let mut acc = 0.0f64;
        for &l in self.limbs.iter().rev() {
            acc = acc * 2.0f64.powi(64) + l as f64;
        }
        acc
    }

    /// Exact value if it fits in u128.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(u128::from(self.limbs[0])),
            2 => Some(u128::from(self.limbs[0]) | (u128::from(self.limbs[1]) << 64)),
            _ => None,
        }
    }

    /// Divides in place by a nonzero single-limb divisor, returning the
    /// remainder.  Used by decimal rendering.
    fn div_rem_u64(&mut self, div: u64) -> u64 {
        assert!(div != 0, "division by zero");
        let mut rem = 0u128;
        for limb in self.limbs.iter_mut().rev() {
            let cur = (rem << 64) | u128::from(*limb);
            *limb = (cur / u128::from(div)) as u64;
            rem = cur % u128::from(div);
        }
        self.normalize();
        rem as u64
    }
}

impl From<u64> for BigNat {
    fn from(v: u64) -> Self {
        let mut r = Self { limbs: vec![v] };
        r.normalize();
        r
    }
}

impl From<u128> for BigNat {
    fn from(v: u128) -> Self {
        let mut r = Self { limbs: vec![v as u64, (v >> 64) as u64] };
        r.normalize();
        r
    }
}

impl PartialOrd for BigNat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigNat {
    fn cmp(&self, other: &Self) -> Ordering {
        self.limbs
            .len()
            .cmp(&other.limbs.len())
            .then_with(|| self.limbs.iter().rev().cmp(other.limbs.iter().rev()))
    }
}

impl fmt::Display for BigNat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        const BASE: u64 = 10_000_000_000_000_000_000; // 10^19
        let mut chunks = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            chunks.push(cur.div_rem_u64(BASE));
        }
        let mut s = chunks.last().expect("nonzero").to_string();
        for chunk in chunks.iter().rev().skip(1) {
            s.push_str(&format!("{chunk:019}"));
        }
        write!(f, "{s}")
    }
}

/// k! as a [`BigNat`], for any k.
pub fn factorial_big(k: u32) -> BigNat {
    let mut acc = BigNat::one();
    for i in 2..=u64::from(k) {
        acc = acc.mul_u64(i);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_zero() {
        assert!(BigNat::zero().is_zero());
        assert_eq!(BigNat::from(0u64), BigNat::zero());
        assert_eq!(BigNat::from(0u128), BigNat::zero());
        assert_eq!(BigNat::one().to_u128(), Some(1));
    }

    #[test]
    fn add_matches_u128() {
        let cases = [
            (0u128, 0u128),
            (1, u128::from(u64::MAX)),
            (u128::from(u64::MAX), u128::from(u64::MAX)),
            (1 << 100, (1 << 100) + 12345),
        ];
        for (a, b) in cases {
            let got = BigNat::from(a).add(&BigNat::from(b));
            assert_eq!(got.to_u128(), Some(a + b), "{a} + {b}");
        }
    }

    #[test]
    fn add_carries_past_u128() {
        let a = BigNat::from(u128::MAX);
        let sum = a.add(&BigNat::one());
        assert_eq!(sum.to_u128(), None);
        assert_eq!(sum.bit_len(), 129);
        assert_eq!(sum.to_string(), "340282366920938463463374607431768211456");
    }

    #[test]
    fn mul_matches_u128() {
        let cases = [(0u128, 7u128), (12345, 67890), (1 << 64, 1 << 63)];
        for (a, b) in cases {
            let got = BigNat::from(a).mul(&BigNat::from(b));
            assert_eq!(got.to_u128(), Some(a * b), "{a} * {b}");
            let got_small = BigNat::from(a).mul_u64(b as u64);
            if b <= u128::from(u64::MAX) {
                assert_eq!(got_small.to_u128(), Some(a * b));
            }
        }
    }

    #[test]
    fn pow_matches_checked_pow() {
        for base in [2u128, 3, 10] {
            for exp in [0u32, 1, 5, 20] {
                let got = BigNat::from(base).pow(exp);
                assert_eq!(got.to_u128(), base.checked_pow(exp), "{base}^{exp}");
            }
        }
        // Past u128: 2^200.
        let big = BigNat::from(2u64).pow(200);
        assert_eq!(big.bit_len(), 201);
        assert_eq!(big.ceil_log2(), 200);
    }

    #[test]
    fn ordering_is_numeric() {
        let mut values: Vec<BigNat> = [0u128, 1, 2, u128::from(u64::MAX), 1 << 80, u128::MAX]
            .into_iter()
            .map(BigNat::from)
            .collect();
        values.push(BigNat::from(u128::MAX).add(&BigNat::one()));
        for w in values.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn display_matches_u128_formatting() {
        for v in [0u128, 9, 10, 12345678901234567890, u128::MAX] {
            assert_eq!(BigNat::from(v).to_string(), v.to_string());
        }
    }

    #[test]
    fn factorial_known_values() {
        assert_eq!(factorial_big(0).to_u128(), Some(1));
        assert_eq!(factorial_big(12).to_u128(), Some(479001600));
        // 35! is the first factorial past u128 (34! ≈ 2.95·10³⁸ < 2¹²⁸).
        assert!(factorial_big(34).to_u128().is_some());
        assert_eq!(factorial_big(35).to_u128(), None);
        // 50! from an external table.
        assert_eq!(
            factorial_big(50).to_string(),
            "30414093201713378043612608166064768844377641568960512000000000000"
        );
    }

    #[test]
    fn ceil_log2_edge_cases() {
        assert_eq!(BigNat::one().ceil_log2(), 0);
        assert_eq!(BigNat::from(2u64).ceil_log2(), 1);
        assert_eq!(BigNat::from(3u64).ceil_log2(), 2);
        assert_eq!(BigNat::from(4u64).ceil_log2(), 2);
        assert_eq!(BigNat::from(5u64).ceil_log2(), 3);
        // Power-of-two boundary across a limb edge.
        let p64 = BigNat::from(2u64).pow(64);
        assert_eq!(p64.ceil_log2(), 64);
        assert_eq!(p64.add(&BigNat::one()).ceil_log2(), 65);
    }

    #[test]
    fn to_f64_tracks_magnitude() {
        let v = BigNat::from(2u64).pow(100);
        let rel = (v.to_f64() - 2f64.powi(100)).abs() / 2f64.powi(100);
        assert!(rel < 1e-12);
    }

    #[test]
    #[should_panic(expected = "ceil_log2 of zero")]
    fn ceil_log2_zero_panics() {
        BigNat::zero().ceil_log2();
    }
}
