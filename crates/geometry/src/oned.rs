//! Exact distance-permutation counts on the real line.
//!
//! In one dimension every Lp metric is |x − y|, and the bisector of two
//! sites is their midpoint.  Cutting the line at the distinct midpoints of
//! the C(k,2) site pairs leaves exactly (#distinct midpoints + 1) cells —
//! so the maximum C(k,2)+1 (= N_{1,p}(k) for every p, and also the tree
//! bound of Theorem 4) is achieved iff all midpoints are distinct.

use crate::rational::Rat;
use std::collections::BTreeSet;

/// Exact number of distance permutations of integer sites on the line.
///
/// # Panics
/// Panics if two sites coincide.
pub fn exact_count_1d(sites: &[i64]) -> u128 {
    if sites.len() < 2 {
        return 1;
    }
    let mut midpoints: BTreeSet<Rat> = BTreeSet::new();
    for i in 0..sites.len() {
        for j in (i + 1)..sites.len() {
            assert_ne!(sites[i], sites[j], "duplicate site {}", sites[i]);
            midpoints.insert(Rat::new(i128::from(sites[i]) + i128::from(sites[j]), 2));
        }
    }
    midpoints.len() as u128 + 1
}

/// The distinct midpoints themselves (sorted), for boundary inspection.
pub fn midpoints_1d(sites: &[i64]) -> Vec<Rat> {
    let mut set: BTreeSet<Rat> = BTreeSet::new();
    for i in 0..sites.len() {
        for j in (i + 1)..sites.len() {
            set.insert(Rat::new(i128::from(sites[i]) + i128::from(sites[j]), 2));
        }
    }
    set.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_metric::{LInf, Metric, L1, L2};
    use dp_permutation::counter::count_distinct;
    use dp_theory::{n_euclidean, tree_bound};

    #[test]
    fn base_cases() {
        assert_eq!(exact_count_1d(&[]), 1);
        assert_eq!(exact_count_1d(&[5]), 1);
        assert_eq!(exact_count_1d(&[0, 10]), 2);
    }

    #[test]
    fn generic_sites_achieve_binomial_bound() {
        // 0, 1, 3, 7: all pairwise midpoints distinct -> C(4,2)+1 = 7.
        let sites = [0, 1, 3, 7];
        assert_eq!(exact_count_1d(&sites), 7);
        assert_eq!(exact_count_1d(&sites), tree_bound(4));
        assert_eq!(exact_count_1d(&sites), n_euclidean(1, 4).unwrap());
    }

    #[test]
    fn arithmetic_progression_collapses_midpoints() {
        // 0, 2, 4: midpoints 1, 2, 3 distinct -> 4 cells.  But 0, 2, 4, 6
        // shares midpoint 3 = (0+6)/2 = (2+4)/2 -> 6+1-1 = 6 cells.
        assert_eq!(exact_count_1d(&[0, 2, 4]), 4);
        assert_eq!(exact_count_1d(&[0, 2, 4, 6]), 6);
    }

    #[test]
    fn midpoints_sorted_and_deduped() {
        let mids = midpoints_1d(&[0, 2, 4, 6]);
        assert_eq!(mids.len(), 5);
        assert!(mids.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(mids[0], Rat::int(1));
        assert_eq!(mids[4], Rat::int(5));
    }

    #[test]
    fn dense_sweep_realises_exact_count_for_all_lp() {
        // A dense 1-D database hits every cell; the empirical count must
        // equal the exact midpoint count, identically for L1/L2/Linf.
        let sites_i = [0i64, 1, 3, 7, 12];
        let exact = exact_count_1d(&sites_i);
        let sites: Vec<Vec<f64>> = sites_i.iter().map(|&s| vec![s as f64]).collect();
        let db: Vec<Vec<f64>> = (-40..=560).map(|i| vec![i as f64 * 0.025]).collect();
        for (name, count) in [
            ("L1", count_distinct(&L1, &sites, &db)),
            ("L2", count_distinct(&L2, &sites, &db)),
            ("Linf", count_distinct(&LInf, &sites, &db)),
        ] {
            assert_eq!(count as u128, exact, "{name}");
        }
        // Silence the unused-import lint for Metric (used via trait call).
        let _ = L2.distance(&[0.0][..], &[1.0][..]);
    }

    #[test]
    #[should_panic(expected = "duplicate site")]
    fn duplicate_sites_rejected() {
        let _ = exact_count_1d(&[3, 3]);
    }
}
