//! Dense-grid enumeration of distance permutations in the plane.
//!
//! For metrics whose bisectors are not straight lines (L1, L∞, general Lp)
//! the exact line-arrangement counter does not apply; the paper resorted to
//! "informal computer-graphics experiments" — a pixel sweep.  This module
//! is that sweep, systematised: it enumerates the distance permutation of
//! every grid point in a bounding box and returns the observed counter.
//!
//! Grid counts are *lower bounds* on the true cell count (cells thinner
//! than the grid pitch can be missed), which is the same caveat the
//! paper's §5 sampling has.

use dp_metric::Metric;
use dp_permutation::{DistPermComputer, Permutation, PermutationCounter};

/// An axis-aligned bounding box in the plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BBox {
    /// Left edge.
    pub x_min: f64,
    /// Right edge.
    pub x_max: f64,
    /// Bottom edge.
    pub y_min: f64,
    /// Top edge.
    pub y_max: f64,
}

impl BBox {
    /// The unit square \[0,1\]².
    pub fn unit() -> BBox {
        BBox { x_min: 0.0, x_max: 1.0, y_min: 0.0, y_max: 1.0 }
    }

    /// A box containing all `sites` with a fractional `margin` around them.
    pub fn around(sites: &[Vec<f64>], margin: f64) -> BBox {
        assert!(!sites.is_empty());
        let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
        for s in sites {
            x0 = x0.min(s[0]);
            x1 = x1.max(s[0]);
            y0 = y0.min(s[1]);
            y1 = y1.max(s[1]);
        }
        let dx = (x1 - x0).max(1e-9) * margin;
        let dy = (y1 - y0).max(1e-9) * margin;
        BBox { x_min: x0 - dx, x_max: x1 + dx, y_min: y0 - dy, y_max: y1 + dy }
    }
}

/// Enumerates the distance permutation at every point of a `width`×`height`
/// grid over `bbox` and returns the counter.
///
/// Grid points sit at pixel centres, so no sample lands exactly on the box
/// boundary.
pub fn grid_count<M: Metric<[f64]>>(
    metric: &M,
    sites: &[Vec<f64>],
    bbox: BBox,
    width: usize,
    height: usize,
) -> PermutationCounter {
    let mut counter = PermutationCounter::new();
    for_each_grid_permutation(metric, sites, bbox, width, height, |_, _, p| {
        counter.insert(p);
    });
    counter
}

/// Visits every grid point with its pixel coordinates and permutation.
///
/// Shared by the counter above and the figure renderer.
pub fn for_each_grid_permutation<M, F>(
    metric: &M,
    sites: &[Vec<f64>],
    bbox: BBox,
    width: usize,
    height: usize,
    mut visit: F,
) where
    M: Metric<[f64]>,
    F: FnMut(usize, usize, Permutation),
{
    assert!(width > 0 && height > 0, "empty grid");
    assert!(sites.iter().all(|s| s.len() == 2), "grid sampling is 2-D");
    let mut computer = DistPermComputer::new(sites.len());
    let site_refs: Vec<&[f64]> = sites.iter().map(std::vec::Vec::as_slice).collect();
    let adapter = SliceMetric { inner: metric };
    let dx = (bbox.x_max - bbox.x_min) / width as f64;
    let dy = (bbox.y_max - bbox.y_min) / height as f64;
    let mut point = [0.0f64; 2];
    for py in 0..height {
        point[1] = bbox.y_min + (py as f64 + 0.5) * dy;
        for px in 0..width {
            point[0] = bbox.x_min + (px as f64 + 0.5) * dx;
            let q: &[f64] = &point;
            let p = computer.compute(&adapter, &site_refs, &q);
            visit(px, py, p);
        }
    }
}

/// Adaptive-refinement permutation census.
///
/// Uniform grids miss cells thinner than the pixel pitch — the paper's own
/// caveat about its sampled counts.  This variant starts from a coarse
/// `base × base` grid of squares and recursively subdivides every square
/// whose corners disagree, spending resolution only along cell boundaries
/// (where undiscovered thin cells live).  With the same sample budget it
/// dominates the uniform grid; with `max_depth` extra levels it resolves
/// features `2^max_depth` times thinner than the base pitch.
pub fn adaptive_count<M: Metric<[f64]>>(
    metric: &M,
    sites: &[Vec<f64>],
    bbox: BBox,
    base: usize,
    max_depth: u32,
) -> PermutationCounter {
    assert!(base >= 2, "need at least a 2x2 base grid");
    assert!(sites.iter().all(|s| s.len() == 2), "adaptive sampling is 2-D");
    let mut computer = DistPermComputer::new(sites.len());
    let site_refs: Vec<&[f64]> = sites.iter().map(std::vec::Vec::as_slice).collect();
    let adapter = SliceMetric { inner: metric };
    let mut counter = PermutationCounter::new();
    let mut eval = |x: f64, y: f64, counter: &mut PermutationCounter| {
        let point = [x, y];
        let q: &[f64] = &point;
        let p = computer.compute(&adapter, &site_refs, &q);
        counter.insert(p);
        p
    };

    // Seed squares from the base lattice.
    let dx = (bbox.x_max - bbox.x_min) / base as f64;
    let dy = (bbox.y_max - bbox.y_min) / base as f64;
    let mut lattice = vec![vec![Permutation::identity(sites.len()); base + 1]; base + 1];
    for (i, row) in lattice.iter_mut().enumerate() {
        for (j, slot) in row.iter_mut().enumerate() {
            *slot = eval(bbox.x_min + i as f64 * dx, bbox.y_min + j as f64 * dy, &mut counter);
        }
    }
    // Work stack: (x0, y0, size_x, size_y, corner perms, depth).
    let mut stack: Vec<(f64, f64, f64, f64, [Permutation; 4], u32)> = Vec::new();
    for i in 0..base {
        for j in 0..base {
            let corners =
                [lattice[i][j], lattice[i + 1][j], lattice[i][j + 1], lattice[i + 1][j + 1]];
            if corners.iter().any(|&c| c != corners[0]) {
                stack.push((
                    bbox.x_min + i as f64 * dx,
                    bbox.y_min + j as f64 * dy,
                    dx,
                    dy,
                    corners,
                    0,
                ));
            }
        }
    }
    while let Some((x0, y0, sx, sy, corners, depth)) = stack.pop() {
        if depth >= max_depth {
            continue;
        }
        let (hx, hy) = (sx / 2.0, sy / 2.0);
        // Five new samples: edge midpoints and the centre.
        let mb = eval(x0 + hx, y0, &mut counter);
        let ml = eval(x0, y0 + hy, &mut counter);
        let mc = eval(x0 + hx, y0 + hy, &mut counter);
        let mr = eval(x0 + sx, y0 + hy, &mut counter);
        let mt = eval(x0 + hx, y0 + sy, &mut counter);
        let quads = [
            (x0, y0, [corners[0], mb, ml, mc]),
            (x0 + hx, y0, [mb, corners[1], mc, mr]),
            (x0, y0 + hy, [ml, mc, corners[2], mt]),
            (x0 + hx, y0 + hy, [mc, mr, mt, corners[3]]),
        ];
        for (qx, qy, qc) in quads {
            if qc.iter().any(|&c| c != qc[0]) {
                stack.push((qx, qy, hx, hy, qc, depth + 1));
            }
        }
    }
    counter
}

/// Adapts a `Metric<[f64]>` to the `&[f64]` point type used for zero-copy
/// site references.
struct SliceMetric<'a, M> {
    inner: &'a M,
}

impl<M: Metric<[f64]>> Metric<&[f64]> for SliceMetric<'_, M> {
    type Dist = M::Dist;

    #[inline]
    fn distance(&self, a: &&[f64], b: &&[f64]) -> M::Dist {
        self.inner.distance(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrangement::euclidean_cells;
    use dp_metric::{LInf, L1, L2};

    fn fig_sites() -> Vec<Vec<f64>> {
        // Four sites in general position chosen (by randomized search) so
        // that both the L1 and L2 bisector systems yield the full 18 cells
        // — the configuration class of the paper's Figs 3 and 4.
        vec![vec![0.9867, 0.5630], vec![0.3364, 0.5875], vec![0.4702, 0.8210], vec![0.8423, 0.3812]]
    }

    #[test]
    fn euclidean_grid_count_matches_exact_arrangement() {
        // Integer-scaled copies of the figure sites so the exact counter
        // applies: grid sampling at 500x500 must find all 18 cells.
        let int_sites: Vec<(i64, i64)> = vec![(22, 45), (58, 29), (71, 62), (40, 80)];
        let exact = euclidean_cells(&int_sites);
        assert_eq!(exact, 18);

        let sites: Vec<Vec<f64>> =
            int_sites.iter().map(|&(x, y)| vec![x as f64 / 100.0, y as f64 / 100.0]).collect();
        let bbox = BBox { x_min: -1.0, x_max: 2.0, y_min: -1.0, y_max: 2.0 };
        let counter = grid_count(&L2, &sites, bbox, 500, 500);
        assert_eq!(counter.distinct() as u128, exact);
    }

    #[test]
    fn l1_grid_count_reproduces_figure4() {
        // Fig 4: the same kind of configuration under L1 also yields 18
        // cells (though not the same 18 permutations).
        let sites = fig_sites();
        let bbox = BBox { x_min: -1.5, x_max: 2.5, y_min: -1.5, y_max: 2.5 };
        let l1 = grid_count(&L1, &sites, bbox, 600, 600);
        let l2 = grid_count(&L2, &sites, bbox, 600, 600);
        assert_eq!(l1.distinct(), 18, "L1 cell count");
        assert_eq!(l2.distinct(), 18, "L2 cell count");
        // ... but not the same permutation sets (the paper's observation).
        assert_ne!(l1.sorted_permutations(), l2.sorted_permutations());
    }

    #[test]
    fn linf_count_is_plausible() {
        let sites = fig_sites();
        let bbox = BBox { x_min: -1.5, x_max: 2.5, y_min: -1.5, y_max: 2.5 };
        let linf = grid_count(&LInf, &sites, bbox, 400, 400);
        assert!(linf.distinct() <= 24);
        assert!(linf.distinct() >= 10);
    }

    #[test]
    fn counts_never_exceed_factorial() {
        let sites = fig_sites();
        let c = grid_count(&L2, &sites, BBox::unit(), 120, 120);
        assert!(c.distinct() <= 24);
        assert_eq!(c.total(), 120 * 120);
    }

    #[test]
    fn bbox_around_contains_sites() {
        let sites = fig_sites();
        let bb = BBox::around(&sites, 0.5);
        for s in &sites {
            assert!(s[0] > bb.x_min && s[0] < bb.x_max);
            assert!(s[1] > bb.y_min && s[1] < bb.y_max);
        }
    }

    #[test]
    fn visitor_sees_every_pixel() {
        let sites = fig_sites();
        let mut n = 0usize;
        for_each_grid_permutation(&L2, &sites, BBox::unit(), 17, 13, |_, _, _| n += 1);
        assert_eq!(n, 17 * 13);
    }

    #[test]
    fn adaptive_finds_all_cells_with_a_coarse_base() {
        // 18 cells, found from a 24x24 base with 6 refinement levels —
        // far fewer samples than the 600x600 uniform grid needs.
        let sites = fig_sites();
        let bbox = BBox { x_min: -1.5, x_max: 2.5, y_min: -1.5, y_max: 2.5 };
        let l2 = crate::sampling::adaptive_count(&L2, &sites, bbox, 24, 6);
        assert_eq!(l2.distinct(), 18, "L2 adaptive");
        assert!(l2.total() < 100_000, "adaptive budget exploded: {} samples", l2.total());
        let l1 = crate::sampling::adaptive_count(&L1, &sites, bbox, 24, 6);
        assert_eq!(l1.distinct(), 18, "L1 adaptive");
    }

    #[test]
    fn adaptive_dominates_uniform_grid_at_equal_budget() {
        // k = 6 sites produce thin cells; compare an 80x80 uniform grid
        // (6400 samples) against adaptive with a similar budget.
        let sites: Vec<Vec<f64>> = vec![
            vec![0.11, 0.21],
            vec![0.83, 0.33],
            vec![0.46, 0.94],
            vec![0.70, 0.69],
            vec![0.26, 0.62],
            vec![0.55, 0.12],
        ];
        let bbox = BBox { x_min: -1.0, x_max: 2.0, y_min: -1.0, y_max: 2.0 };
        let uniform = grid_count(&L2, &sites, bbox, 80, 80);
        let adaptive = adaptive_count(&L2, &sites, bbox, 40, 5);
        assert!(
            adaptive.distinct() >= uniform.distinct(),
            "adaptive {} < uniform {}",
            adaptive.distinct(),
            uniform.distinct()
        );
        // N_{2,2}(6) = 101 bounds both.
        assert!(adaptive.distinct() <= 101);
    }

    #[test]
    fn adaptive_on_uniform_region_samples_only_the_lattice() {
        // One site: a single cell everywhere; no refinement should occur.
        let sites = vec![vec![0.5, 0.5]];
        let c = adaptive_count(&L2, &sites, BBox::unit(), 8, 6);
        assert_eq!(c.distinct(), 1);
        assert_eq!(c.total(), 81);
    }
}
