//! Regenerating the paper's Figures 1–4.
//!
//! * Fig 1 — nearest-neighbour Voronoi diagram (cells keyed by the first
//!   element of the distance permutation);
//! * Fig 2 — second-order Voronoi diagram (cells keyed by the *unordered*
//!   pair of the two nearest sites);
//! * Fig 3 — the full bisector arrangement under L2 (cells keyed by the
//!   whole permutation), with the exact bisector lines drawable as SVG;
//! * Fig 4 — the same under L1, where bisectors kink.
//!
//! Cell maps are emitted as binary PPM (P6) — dependency-free and viewable
//! everywhere; the Euclidean line overlay is emitted as SVG.

use crate::line::Line;
use crate::sampling::{for_each_grid_permutation, BBox};
use dp_metric::Metric;
use dp_permutation::Permutation;

/// Which aspect of the distance permutation defines a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellKey {
    /// First element only — Fig 1 (classical Voronoi).
    Nearest,
    /// Unordered two nearest — Fig 2 (second-order Voronoi).
    TopTwoUnordered,
    /// The entire permutation — Figs 3 and 4.
    FullPermutation,
}

impl CellKey {
    /// Maps a permutation to the cell identifier under this key.
    pub fn key_of(self, p: &Permutation) -> u64 {
        match self {
            CellKey::Nearest => u64::from(p.get(0)),
            CellKey::TopTwoUnordered => {
                let (a, b) = (p.get(0), p.get(1));
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                (u64::from(lo) << 8) | u64::from(hi)
            }
            CellKey::FullPermutation => dp_permutation::lehmer::rank(p) as u64,
        }
    }
}

/// An RGB raster image.
#[derive(Debug, Clone)]
pub struct Image {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Row-major RGB bytes, `3 * width * height` long.
    pub pixels: Vec<u8>,
}

impl Image {
    fn new(width: usize, height: usize) -> Image {
        Image { width, height, pixels: vec![255; 3 * width * height] }
    }

    fn put(&mut self, x: usize, y: usize, rgb: [u8; 3]) {
        let i = 3 * (y * self.width + x);
        self.pixels[i..i + 3].copy_from_slice(&rgb);
    }

    /// Serialises as binary PPM (P6).
    pub fn to_ppm(&self) -> Vec<u8> {
        let mut out = format!("P6\n{} {}\n255\n", self.width, self.height).into_bytes();
        out.extend_from_slice(&self.pixels);
        out
    }
}

/// A visually well-spread colour for cell id `key` (golden-angle hue walk).
fn cell_colour(key: u64) -> [u8; 3] {
    // Scramble the key, then take a hue on the golden-angle spiral so
    // adjacent ids land far apart on the colour wheel.
    let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let hue = (h >> 40) as f64 / (1u64 << 24) as f64; // [0,1)
    let (r, g, b) = hsl_to_rgb(hue, 0.55, 0.72);
    [r, g, b]
}

fn hsl_to_rgb(h: f64, s: f64, l: f64) -> (u8, u8, u8) {
    let c = (1.0 - (2.0 * l - 1.0).abs()) * s;
    let hp = h * 6.0;
    let x = c * (1.0 - (hp % 2.0 - 1.0).abs());
    let (r, g, b) = match hp as u32 {
        0 => (c, x, 0.0),
        1 => (x, c, 0.0),
        2 => (0.0, c, x),
        3 => (0.0, x, c),
        4 => (x, 0.0, c),
        _ => (c, 0.0, x),
    };
    let m = l - c / 2.0;
    (((r + m) * 255.0) as u8, ((g + m) * 255.0) as u8, ((b + m) * 255.0) as u8)
}

/// Renders the cell map of `sites` under `metric` into an RGB image.
///
/// Sites are stamped as black disks.  This is the generator for Figures
/// 1–4 (select the figure via `key`/`metric`).
pub fn render_cells<M: Metric<[f64]>>(
    metric: &M,
    sites: &[Vec<f64>],
    bbox: BBox,
    width: usize,
    height: usize,
    key: CellKey,
) -> Image {
    let mut img = Image::new(width, height);
    for_each_grid_permutation(metric, sites, bbox, width, height, |x, y, p| {
        // Flip y so the image has y increasing upwards like the figures.
        img.put(x, height - 1 - y, cell_colour(key.key_of(&p)));
    });
    // Stamp the sites.
    let r = (width.min(height) / 90).max(2) as isize;
    for s in sites {
        let px = ((s[0] - bbox.x_min) / (bbox.x_max - bbox.x_min) * width as f64) as isize;
        let py = ((s[1] - bbox.y_min) / (bbox.y_max - bbox.y_min) * height as f64) as isize;
        for dy in -r..=r {
            for dx in -r..=r {
                if dx * dx + dy * dy <= r * r {
                    let (x, y) = (px + dx, height as isize - 1 - (py + dy));
                    if x >= 0 && y >= 0 && (x as usize) < width && (y as usize) < height {
                        img.put(x as usize, y as usize, [0, 0, 0]);
                    }
                }
            }
        }
    }
    img
}

/// Renders the exact Euclidean bisector lines of integer sites as an SVG
/// overlay (Fig 3's line drawing).
pub fn svg_euclidean_bisectors(sites: &[(i64, i64)], bbox: BBox, size: f64) -> String {
    let scale_x = size / (bbox.x_max - bbox.x_min);
    let scale_y = size / (bbox.y_max - bbox.y_min);
    let tx = |x: f64| (x - bbox.x_min) * scale_x;
    let ty = |y: f64| size - (y - bbox.y_min) * scale_y;

    let mut svg = String::new();
    svg.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{size}\" height=\"{size}\" \
         viewBox=\"0 0 {size} {size}\">\n<rect width=\"{size}\" height=\"{size}\" \
         fill=\"white\"/>\n"
    ));
    for i in 0..sites.len() {
        for j in (i + 1)..sites.len() {
            let line = Line::bisector(sites[i], sites[j]);
            if let Some(((x1, y1), (x2, y2))) = clip_line_to_bbox(&line, bbox) {
                svg.push_str(&format!(
                    "<line x1=\"{:.2}\" y1=\"{:.2}\" x2=\"{:.2}\" y2=\"{:.2}\" \
                     stroke=\"#333\" stroke-width=\"1\"/>\n",
                    tx(x1),
                    ty(y1),
                    tx(x2),
                    ty(y2)
                ));
            }
        }
    }
    for &(x, y) in sites {
        svg.push_str(&format!(
            "<circle cx=\"{:.2}\" cy=\"{:.2}\" r=\"4\" fill=\"black\"/>\n",
            tx(x as f64),
            ty(y as f64)
        ));
    }
    svg.push_str("</svg>\n");
    svg
}

/// A candidate chord: two endpoints plus the squared length between them.
type Chord = ((f64, f64), (f64, f64), f64);

/// Clips `a·x + b·y = c` to the box, returning the chord endpoints.
fn clip_line_to_bbox(line: &Line, bbox: BBox) -> Option<((f64, f64), (f64, f64))> {
    let (a, b, c) = (line.a() as f64, line.b() as f64, line.c() as f64);
    let mut pts: Vec<(f64, f64)> = Vec::with_capacity(4);
    let eps = 1e-9;
    if b.abs() > eps {
        for x in [bbox.x_min, bbox.x_max] {
            let y = (c - a * x) / b;
            if y >= bbox.y_min - eps && y <= bbox.y_max + eps {
                pts.push((x, y));
            }
        }
    }
    if a.abs() > eps {
        for y in [bbox.y_min, bbox.y_max] {
            let x = (c - b * y) / a;
            if x >= bbox.x_min - eps && x <= bbox.x_max + eps {
                pts.push((x, y));
            }
        }
    }
    // Pick the two most distant candidates (duplicates arise at corners).
    let mut best: Option<Chord> = None;
    for i in 0..pts.len() {
        for j in (i + 1)..pts.len() {
            let d = (pts[i].0 - pts[j].0).powi(2) + (pts[i].1 - pts[j].1).powi(2);
            if best.is_none_or(|(_, _, bd)| d > bd) {
                best = Some((pts[i], pts[j], d));
            }
        }
    }
    best.filter(|&(_, _, d)| d > eps).map(|(p, q, _)| (p, q))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_metric::{L1, L2};

    fn sites() -> Vec<Vec<f64>> {
        vec![vec![0.22, 0.45], vec![0.58, 0.29], vec![0.71, 0.62], vec![0.40, 0.80]]
    }

    #[test]
    fn ppm_has_correct_header_and_size() {
        let img = render_cells(&L2, &sites(), BBox::unit(), 40, 30, CellKey::FullPermutation);
        let ppm = img.to_ppm();
        assert!(ppm.starts_with(b"P6\n40 30\n255\n"));
        assert_eq!(ppm.len(), 13 + 3 * 40 * 30);
    }

    #[test]
    fn nearest_key_has_at_most_k_colours() {
        let img = render_cells(&L2, &sites(), BBox::unit(), 64, 64, CellKey::Nearest);
        let mut colours = std::collections::HashSet::new();
        for px in img.pixels.chunks(3) {
            colours.insert([px[0], px[1], px[2]]);
        }
        // 4 cell colours + black site stamps.
        assert!(colours.len() <= 5, "{} colours", colours.len());
    }

    #[test]
    fn cell_keys_distinguish_modes() {
        let p = Permutation::from_slice(&[2, 1, 0, 3]).unwrap();
        let q = Permutation::from_slice(&[1, 2, 0, 3]).unwrap();
        // Different nearest site.
        assert_ne!(CellKey::Nearest.key_of(&p), CellKey::Nearest.key_of(&q));
        // Same unordered top-two {1,2}.
        assert_eq!(CellKey::TopTwoUnordered.key_of(&p), CellKey::TopTwoUnordered.key_of(&q));
        assert_ne!(CellKey::FullPermutation.key_of(&p), CellKey::FullPermutation.key_of(&q));
    }

    #[test]
    fn l1_render_works() {
        let img = render_cells(&L1, &sites(), BBox::unit(), 32, 32, CellKey::FullPermutation);
        assert_eq!(img.pixels.len(), 3 * 32 * 32);
    }

    #[test]
    fn svg_contains_six_bisectors_and_four_sites() {
        let int_sites = [(22, 45), (58, 29), (71, 62), (40, 80)];
        let bb = BBox { x_min: 0.0, x_max: 100.0, y_min: 0.0, y_max: 100.0 };
        let svg = svg_euclidean_bisectors(&int_sites, bb, 400.0);
        assert_eq!(svg.matches("<line").count(), 6);
        assert_eq!(svg.matches("<circle").count(), 4);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
    }

    #[test]
    fn clip_handles_vertical_and_horizontal_lines() {
        let bb = BBox::unit();
        let v = Line::new(1, 0, 0); // x = 0 boundary-grazing
        let inside = Line::new(2, 0, 1); // x = 0.5
        let h = Line::new(0, 2, 1); // y = 0.5
        assert!(clip_line_to_bbox(&inside, bb).is_some());
        assert!(clip_line_to_bbox(&h, bb).is_some());
        let _ = clip_line_to_bbox(&v, bb); // boundary case must not panic
        let outside = Line::new(1, 0, 5); // x = 5
        assert!(clip_line_to_bbox(&outside, bb).is_none());
    }

    #[test]
    fn colours_are_stable() {
        assert_eq!(cell_colour(7), cell_colour(7));
        assert_ne!(cell_colour(1), cell_colour(2));
    }
}
