//! # dp-geometry — exact bisector arrangements and figure rendering
//!
//! Section 2 of *Counting distance permutations* interprets the number of
//! distance permutations as the number of cells in the arrangement of the
//! C(k,2) site bisectors — a refinement of every order of Voronoi diagram
//! (Figs 1–4).  This crate makes that interpretation executable:
//!
//! * [`rational`] — exact `i128` fraction arithmetic (no rounding, no
//!   epsilons);
//! * [`mod@line`] — canonicalised lines `ax + by = c` and perpendicular
//!   bisectors of integer sites;
//! * [`arrangement`] — exact cell counting for line arrangements via
//!   `F = 1 + m + Σ_v (λ(v) − 1)`, correctly handling parallel, coincident
//!   and concurrent lines (the forced coincidences
//!   `a|x ∩ b|x = a|b ∩ b|x` of Theorem 7's proof);
//! * [`oned`] — exact 1-D counts: distinct midpoints + 1, for every Lp;
//! * [`faces`] — exact *enumeration* of the permutations themselves
//!   (which permutation each cell carries), by rational slab sampling —
//!   cross-validated against the Euler-formula count;
//! * [`sampling`] — dense-grid permutation enumeration for arbitrary 2-D
//!   metrics (how the paper's informal experiments and Fig 4's 18 cells
//!   were obtained);
//! * [`render`] — regenerates Figures 1–4 as PPM cell maps and SVG line
//!   drawings.

#![forbid(unsafe_code)]

pub mod arrangement;
pub mod faces;
pub mod l1exact;
pub mod line;
pub mod oned;
pub mod rational;
pub mod render;
pub mod sampling;

pub use arrangement::{count_cells, euclidean_cells};
pub use faces::{exact_permutations, exact_prefix_count, exact_unordered_prefix_count};
pub use l1exact::{l1_cells, linf_cells};
pub use line::Line;
pub use oned::exact_count_1d;
pub use rational::Rat;
