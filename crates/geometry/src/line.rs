//! Canonicalised lines and Euclidean perpendicular bisectors.
//!
//! A line is `a·x + b·y = c` with integer coefficients reduced by their gcd
//! and sign-fixed, so coincident bisectors compare equal structurally —
//! exactly what the arrangement counter needs to honour the paper's
//! `a|x ∩ b|x = a|b ∩ b|x` coincidences.

use crate::rational::Rat;

/// A line `a·x + b·y = c` in canonical integer form.
///
/// Canonical means: gcd(a, b, c) = 1 and the first nonzero of (a, b) is
/// positive.  Two [`Line`]s are equal iff they are the same point set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Line {
    a: i128,
    b: i128,
    c: i128,
}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

impl Line {
    /// Creates the canonical line `a·x + b·y = c`.
    ///
    /// # Panics
    /// Panics if `a == b == 0` (not a line).
    pub fn new(a: i128, b: i128, c: i128) -> Line {
        assert!(a != 0 || b != 0, "degenerate line 0x + 0y = {c}");
        let g = gcd(gcd(a, b), c).max(1);
        let (mut a, mut b, mut c) = (a / g, b / g, c / g);
        let lead = if a != 0 { a } else { b };
        if lead < 0 {
            a = -a;
            b = -b;
            c = -c;
        }
        Line { a, b, c }
    }

    /// Coefficient of x.
    pub fn a(&self) -> i128 {
        self.a
    }

    /// Coefficient of y.
    pub fn b(&self) -> i128 {
        self.b
    }

    /// Right-hand side.
    pub fn c(&self) -> i128 {
        self.c
    }

    /// The Euclidean perpendicular bisector of integer sites `p` and `q`:
    /// the set where |z−p|² = |z−q|², i.e.
    /// `2(qx−px)·x + 2(qy−py)·y = qx²+qy²−px²−py²`.
    ///
    /// # Panics
    /// Panics if `p == q` (the bisector would be the whole plane).
    pub fn bisector(p: (i64, i64), q: (i64, i64)) -> Line {
        assert_ne!(p, q, "bisector of identical sites is the whole plane");
        let (px, py) = (i128::from(p.0), i128::from(p.1));
        let (qx, qy) = (i128::from(q.0), i128::from(q.1));
        let a = 2 * (qx - px);
        let b = 2 * (qy - py);
        let c = qx * qx + qy * qy - px * px - py * py;
        Line::new(a, b, c)
    }

    /// True iff the two lines are parallel (or coincident).
    pub fn parallel(&self, other: &Line) -> bool {
        self.a * other.b == other.a * self.b
    }

    /// Intersection point of two non-parallel lines, as exact rationals.
    ///
    /// Returns `None` for parallel or coincident lines.
    pub fn intersect(&self, other: &Line) -> Option<(Rat, Rat)> {
        let det = self.a * other.b - other.a * self.b;
        if det == 0 {
            return None;
        }
        // Cramer's rule.
        let x = Rat::new(self.c * other.b - other.c * self.b, det);
        let y = Rat::new(self.a * other.c - other.a * self.c, det);
        Some((x, y))
    }

    /// Evaluates the signed expression `a·x + b·y − c` at a rational point.
    pub fn eval(&self, x: Rat, y: Rat) -> Rat {
        Rat::int(self.a) * x + Rat::int(self.b) * y - Rat::int(self.c)
    }

    /// True iff the point lies on the line.
    pub fn contains(&self, x: Rat, y: Rat) -> bool {
        self.eval(x, y).is_zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_form_dedupes_scalar_multiples() {
        assert_eq!(Line::new(2, 4, 6), Line::new(1, 2, 3));
        assert_eq!(Line::new(-1, -2, -3), Line::new(1, 2, 3));
        assert_eq!(Line::new(0, -5, 10), Line::new(0, 1, -2));
    }

    #[test]
    fn bisector_of_horizontal_pair_is_vertical() {
        // Sites (0,0) and (2,0): bisector x = 1.
        let l = Line::bisector((0, 0), (2, 0));
        assert_eq!(l, Line::new(1, 0, 1));
    }

    #[test]
    fn bisector_symmetric_in_arguments() {
        let l1 = Line::bisector((1, 3), (4, -2));
        let l2 = Line::bisector((4, -2), (1, 3));
        assert_eq!(l1, l2);
    }

    #[test]
    fn bisector_contains_midpoint() {
        let l = Line::bisector((0, 0), (3, 5));
        assert!(l.contains(Rat::new(3, 2), Rat::new(5, 2)));
    }

    #[test]
    fn intersection_basic() {
        let lx = Line::new(1, 0, 1); // x = 1
        let ly = Line::new(0, 1, 2); // y = 2
        assert_eq!(lx.intersect(&ly), Some((Rat::int(1), Rat::int(2))));
    }

    #[test]
    fn parallel_lines_do_not_intersect() {
        let l1 = Line::new(1, 1, 0);
        let l2 = Line::new(1, 1, 5);
        assert!(l1.parallel(&l2));
        assert_eq!(l1.intersect(&l2), None);
        assert!(l1.parallel(&l1));
    }

    #[test]
    fn transitive_bisector_concurrency() {
        // The Theorem 7 coincidence: A|B, B|C and A|C meet at one point
        // (the circumcentre) for non-collinear sites.
        let a = (0, 0);
        let b = (4, 0);
        let c = (0, 6);
        let ab = Line::bisector(a, b);
        let bc = Line::bisector(b, c);
        let ac = Line::bisector(a, c);
        let p1 = ab.intersect(&bc).unwrap();
        let p2 = ab.intersect(&ac).unwrap();
        assert_eq!(p1, p2);
        assert!(bc.contains(p1.0, p1.1));
    }

    #[test]
    fn collinear_sites_give_parallel_bisectors() {
        let ab = Line::bisector((0, 0), (2, 2));
        let bc = Line::bisector((2, 2), (5, 5));
        assert!(ab.parallel(&bc));
        assert_ne!(ab, bc);
    }

    #[test]
    #[should_panic(expected = "identical sites")]
    fn identical_sites_rejected() {
        let _ = Line::bisector((1, 1), (1, 1));
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn degenerate_line_rejected() {
        let _ = Line::new(0, 0, 3);
    }
}
