//! Exact enumeration of the distance permutations of 2-D Euclidean
//! sites — not just how many cells exist, but *which* permutation each
//! cell carries.
//!
//! [`crate::arrangement::count_cells`] counts faces through the Euler
//! relation; this module walks the faces.  Every face of the bisector
//! arrangement contains a sample point of the slab decomposition: take
//! every critical x (vertex abscissae and vertical lines), sample a
//! rational x strictly inside each gap, sort the non-vertical lines by
//! their y at that x, and take a rational y strictly inside each gap.
//! Such a point lies on no bisector, so its distance permutation is
//! determined by exact sign evaluations of the (pre-canonical) bisector
//! forms — no floating point, no epsilons.
//!
//! The distinct-permutation set this yields is cross-validated against
//! the independent Euler-formula count (they must agree for any site
//! configuration: each cell has exactly one permutation, and two cells
//! separated by a bisector differ in at least one pairwise order —
//! tested, not assumed).

use crate::line::Line;
use crate::rational::Rat;
use dp_permutation::{Permutation, MAX_K};
use std::collections::BTreeSet;

/// A rational strictly between `a < b` with *additive* (not
/// multiplicative) magnitude growth: the mediant (n₁+n₂)/(d₁+d₂).
///
/// The arithmetic midpoint multiplies denominators, which overflows the
/// checked `i128` arithmetic after two nesting levels at realistic site
/// coordinates; the mediant keeps every intermediate small.
fn between(a: Rat, b: Rat) -> Rat {
    debug_assert!(a < b, "between() needs a < b");
    Rat::new(a.num() + b.num(), a.den() + b.den())
}

/// Sign of d(site_i, z)² − d(site_j, z)² at a rational point, exactly.
///
/// Derivation: (z−p)·(z−p) − (z−q)·(z−q) = 2(q−p)·z − (|q|²−|p|²).
fn closer_sign(p: (i64, i64), q: (i64, i64), x: Rat, y: Rat) -> i128 {
    let (px, py) = (i128::from(p.0), i128::from(p.1));
    let (qx, qy) = (i128::from(q.0), i128::from(q.1));
    let a = Rat::int(2 * (qx - px));
    let b = Rat::int(2 * (qy - py));
    let c = Rat::int(qx * qx + qy * qy - px * px - py * py);
    (a * x + b * y - c).num().signum()
}

/// The distance permutation of rational point `(x, y)` w.r.t. integer
/// `sites`, exact, with the paper's index tie-break (ties only occur for
/// coincident sites at a generic point).
pub fn permutation_at(sites: &[(i64, i64)], x: Rat, y: Rat) -> Permutation {
    let mut idx: Vec<u8> = (0..sites.len() as u8).collect();
    idx.sort_by(|&i, &j| {
        let s = closer_sign(sites[i as usize], sites[j as usize], x, y);
        s.cmp(&0).then(i.cmp(&j))
    });
    Permutation::from_slice(&idx).expect("indices are a permutation")
}

/// All distinct distance permutations realised by `sites` anywhere in
/// the Euclidean plane, exactly, sorted lexicographically.
///
/// Handles coincident sites (their order is pinned by the tie-break) and
/// every degenerate line configuration (parallel, concurrent, coincident
/// bisectors).  Cost is O(m³·k² log k) rational operations for
/// m = C(k,2) bisector lines — instantaneous at the paper's k ≤ 12.
///
/// # Panics
/// Panics if `sites` is empty, exceeds [`MAX_K`], or coordinates are
/// large enough to overflow the exact arithmetic (|coord| ≳ 2³⁰).
pub fn exact_permutations(sites: &[(i64, i64)]) -> Vec<Permutation> {
    assert!(!sites.is_empty(), "need at least one site");
    assert!(sites.len() <= MAX_K, "more than MAX_K sites");

    // Distinct bisector lines (coincident pairs contribute none).
    let mut lines: BTreeSet<Line> = BTreeSet::new();
    for (i, &p) in sites.iter().enumerate() {
        for &q in sites.iter().skip(i + 1) {
            if p != q {
                lines.insert(Line::bisector(p, q));
            }
        }
    }
    let lines: Vec<Line> = lines.into_iter().collect();

    // Critical x values: vertex abscissae plus vertical-line positions.
    let mut xs: BTreeSet<Rat> = BTreeSet::new();
    for (i, l1) in lines.iter().enumerate() {
        if l1.b() == 0 {
            xs.insert(Rat::new(l1.c(), l1.a()));
        }
        for l2 in lines.iter().skip(i + 1) {
            if let Some((x, _)) = l1.intersect(l2) {
                xs.insert(x);
            }
        }
    }
    let xs: Vec<Rat> = xs.into_iter().collect();

    // Sample x strictly inside every gap of the critical set.
    let mut sample_xs = Vec::with_capacity(xs.len() + 1);
    match (xs.first(), xs.last()) {
        (None, _) => sample_xs.push(Rat::ZERO),
        (Some(&first), Some(&last)) => {
            sample_xs.push(first - Rat::ONE);
            for w in xs.windows(2) {
                sample_xs.push(between(w[0], w[1]));
            }
            sample_xs.push(last + Rat::ONE);
        }
        _ => unreachable!("first and last agree on emptiness"),
    }

    let mut seen: BTreeSet<Permutation> = BTreeSet::new();
    for &x in &sample_xs {
        // Non-vertical lines ordered by height at this x.
        let mut ys: Vec<Rat> = lines
            .iter()
            .filter(|l| l.b() != 0)
            .map(|l| (Rat::int(l.c()) - Rat::int(l.a()) * x) / Rat::int(l.b()))
            .collect();
        ys.sort_unstable();
        ys.dedup();
        let mut sample_ys = Vec::with_capacity(ys.len() + 1);
        match (ys.first(), ys.last()) {
            (None, _) => sample_ys.push(Rat::ZERO),
            (Some(&first), Some(&last)) => {
                sample_ys.push(first - Rat::ONE);
                for w in ys.windows(2) {
                    sample_ys.push(between(w[0], w[1]));
                }
                sample_ys.push(last + Rat::ONE);
            }
            _ => unreachable!(),
        }
        for &y in &sample_ys {
            seen.insert(permutation_at(sites, x, y));
        }
    }
    seen.into_iter().collect()
}

/// Number of distinct ordered length-`len` prefixes over the exact
/// permutation set — the exact version of the §2 refinement chain for
/// 2-D Euclidean sites (ℓ = 1: Voronoi cells of distinct sites; ℓ = k:
/// the full count).
///
/// # Panics
/// Panics if `len` exceeds the site count.
pub fn exact_prefix_count(sites: &[(i64, i64)], len: usize) -> usize {
    assert!(len <= sites.len(), "prefix length exceeds site count");
    let perms = exact_permutations(sites);
    let set: BTreeSet<&[u8]> = perms.iter().map(|p| &p.as_slice()[..len]).collect();
    set.len()
}

/// Number of distinct *unordered* length-`len` prefixes (occupied
/// order-`len` Voronoi cells, Fig 2) over the exact permutation set.
///
/// # Panics
/// Panics if `len` exceeds the site count.
pub fn exact_unordered_prefix_count(sites: &[(i64, i64)], len: usize) -> usize {
    assert!(len <= sites.len(), "prefix length exceeds site count");
    let perms = exact_permutations(sites);
    let set: BTreeSet<Vec<u8>> = perms
        .iter()
        .map(|p| {
            let mut pre = p.as_slice()[..len].to_vec();
            pre.sort_unstable();
            pre
        })
        .collect();
    set.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrangement::euclidean_cells;

    /// The canonical Fig 1–4 sites, scaled to integers.
    fn paper_sites() -> Vec<(i64, i64)> {
        vec![(9867, 5630), (3364, 5875), (4702, 8210), (8423, 3812)]
    }

    #[test]
    fn paper_configuration_has_exactly_18_permutations() {
        let perms = exact_permutations(&paper_sites());
        assert_eq!(perms.len(), 18);
        // Agrees with the independent Euler-formula face count.
        assert_eq!(euclidean_cells(&paper_sites()), 18);
    }

    #[test]
    fn permutation_set_size_equals_cell_count_on_random_sites() {
        // Two independent exact algorithms must agree for arbitrary
        // configurations, including degenerate ones.
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) % 2001) as i64 - 1000
        };
        for trial in 0..20 {
            let k = 3 + (trial % 4);
            let sites: Vec<(i64, i64)> = (0..k).map(|_| (next(), next())).collect();
            let dedup: BTreeSet<(i64, i64)> = sites.iter().copied().collect();
            if dedup.len() < sites.len() {
                continue; // euclidean_cells rejects coincident sites
            }
            let perms = exact_permutations(&sites);
            assert_eq!(
                perms.len() as u128,
                euclidean_cells(&sites),
                "trial {trial}, sites {sites:?}"
            );
        }
    }

    #[test]
    fn generic_sites_achieve_table1_row2() {
        // Sites in general position achieve N_{2,2}(k) exactly.
        let sites = [(0, 0), (97, 13), (41, 89), (-55, 60), (-13, -71)];
        for k in 2..=5usize {
            let perms = exact_permutations(&sites[..k]);
            let expected = dp_theory_n22(k as u32);
            assert_eq!(perms.len() as u128, expected, "k = {k}");
        }
    }

    /// N_{2,2}(k) from Table 1, inlined to avoid a dev-dependency cycle.
    fn dp_theory_n22(k: u32) -> u128 {
        match k {
            2 => 2,
            3 => 6,
            4 => 18,
            5 => 46,
            _ => unreachable!(),
        }
    }

    #[test]
    fn single_and_coincident_sites() {
        assert_eq!(exact_permutations(&[(5, 5)]).len(), 1);
        // Two coincident sites: the tie-break pins 0 before 1 everywhere.
        let perms = exact_permutations(&[(3, 3), (3, 3)]);
        assert_eq!(perms.len(), 1);
        assert_eq!(perms[0].as_slice(), &[0, 1]);
        // A coincident pair plus one distinct site: only the distinct
        // site's relative order can vary.
        let perms = exact_permutations(&[(0, 0), (0, 0), (10, 0)]);
        assert_eq!(perms.len(), 2);
        for p in &perms {
            assert!(p.position_of(0).unwrap() < p.position_of(1).unwrap());
        }
    }

    #[test]
    fn collinear_sites_behave_like_one_dimension() {
        // k collinear sites: the arrangement is k·(k−1)/2 parallel lines
        // (some possibly coincident); generic spacing gives C(k,2)+1.
        let sites: Vec<(i64, i64)> = vec![(0, 0), (7, 0), (19, 0), (40, 0)];
        let perms = exact_permutations(&sites);
        assert_eq!(perms.len(), 7); // C(4,2)+1
                                    // Evenly spaced sites force coincident bisectors — fewer cells.
        let even: Vec<(i64, i64)> = vec![(0, 0), (10, 0), (20, 0), (30, 0)];
        let perms_even = exact_permutations(&even);
        assert!(perms_even.len() < 7, "coincident bisectors must merge cells");
    }

    #[test]
    fn vertical_bisectors_are_handled() {
        // Horizontally aligned site pairs give vertical bisectors.
        let sites = [(0, 0), (10, 0), (0, 10), (10, 10)];
        let perms = exact_permutations(&sites);
        // The square's symmetry collapses many cells; whatever the count,
        // it must match the Euler formula and stay ≤ 18.
        assert_eq!(perms.len() as u128, euclidean_cells(&sites));
        assert!(perms.len() <= 18);
    }

    #[test]
    fn prefix_counts_refine_monotonically_and_exactly() {
        let sites = paper_sites();
        let mut prev = 0;
        for l in 1..=4usize {
            let ordered = exact_prefix_count(&sites, l);
            let unordered = exact_unordered_prefix_count(&sites, l);
            assert!(ordered >= prev);
            assert!(unordered <= ordered);
            prev = ordered;
        }
        // ℓ = 1: all four sites own a nonempty Voronoi cell.
        assert_eq!(exact_prefix_count(&sites, 1), 4);
        // ℓ = k: the full 18.
        assert_eq!(exact_prefix_count(&sites, 4), 18);
        // Fig 2: order-2 cells.  The exact enumeration shows only 5 of
        // the C(4,2) = 6 pairs own a region in this configuration — one
        // pair of sites is never jointly nearest (a fact the paper's
        // pixel experiments could not certify; the exact sampler can).
        assert_eq!(exact_unordered_prefix_count(&sites, 2), 5);
    }

    #[test]
    fn permutation_at_known_points() {
        let sites = [(0, 0), (10, 0)];
        let left = permutation_at(&sites, Rat::int(1), Rat::int(3));
        assert_eq!(left.as_slice(), &[0, 1]);
        let right = permutation_at(&sites, Rat::int(9), Rat::int(-2));
        assert_eq!(right.as_slice(), &[1, 0]);
        // Exactly on the bisector: the tie-break chooses the lower index.
        let on = permutation_at(&sites, Rat::int(5), Rat::int(100));
        assert_eq!(on.as_slice(), &[0, 1]);
    }
}
