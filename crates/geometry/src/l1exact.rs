//! **Exact** L1 and L∞ cell counting in the plane.
//!
//! The paper proves Theorem 9 by over-approximating each piecewise-linear
//! bisector with full hyperplanes, and measures actual L1 counts only by
//! pixel experiments ("informal computer-graphics experiments").  This
//! module computes the true cell count of the L1 bisector arrangement
//! *exactly*, going beyond the paper:
//!
//! 1. For a non-degenerate site pair the L1 bisector is one diagonal
//!    segment (slope ±1) joined to two axis-parallel rays (or a single
//!    straight line when the pair is axis-aligned).  Pairs with
//!    |Δx| = |Δy| have bisectors containing two-dimensional quadrants —
//!    the degeneracy the paper's §4 alludes to — and are rejected.
//! 2. The bisector pieces are clipped to a box beyond every feature and
//!    assembled into an exact planar subdivision over rational
//!    coordinates, grouped by supporting line so collinear overlaps are
//!    handled exactly.
//! 3. Faces are counted by Euler's formula `F_inner = E − V + C`.
//!
//! L∞ reduces to L1 through the rotation (x, y) ↦ (x+y, x−y), which
//! doubles distances and maps cells bijectively; axis-aligned pairs are
//! the degenerate ones there.

use crate::line::Line;
use crate::rational::Rat;
use std::collections::{BTreeMap, BTreeSet};

/// Why an exact L1/L∞ count is unavailable for a configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L1ExactError {
    /// Sites i and j coincide.
    DuplicateSites(usize, usize),
    /// |Δx| = |Δy| for sites i and j: the bisector contains 2-D regions,
    /// so "number of cells" is not defined by a 1-D arrangement.
    DegeneratePair(usize, usize),
}

impl std::fmt::Display for L1ExactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            L1ExactError::DuplicateSites(i, j) => write!(f, "sites {i} and {j} coincide"),
            L1ExactError::DegeneratePair(i, j) => {
                write!(f, "sites {i} and {j} are diagonal (|dx| = |dy|): 2-D bisector")
            }
        }
    }
}

impl std::error::Error for L1ExactError {}

/// An unclipped bisector piece.
enum Piece {
    /// Closed segment between two rational points.
    Seg((Rat, Rat), (Rat, Rat)),
    /// Ray from a rational point in an integer direction.
    Ray((Rat, Rat), (i64, i64)),
    /// Full line through a rational point in an integer direction.
    Full((Rat, Rat), (i64, i64)),
}

/// The L1 bisector of two non-degenerate integer sites.
///
/// In the |Δx| > |Δy| case the bisector is two vertical rays joined by a
/// diagonal segment across the y-band of the sites.  On the band the
/// signed gap |x−px| − |x−qx| equals sign(Δx)·(2x − px − qx), so the ray
/// abscissae pick up a sign(Δx) factor; the mirror case likewise carries
/// sign(Δy).
fn l1_bisector(p: (i64, i64), q: (i64, i64)) -> Result<Vec<Piece>, ()> {
    let (dx, dy) = (q.0 - p.0, q.1 - p.1);
    if (dx == 0 && dy == 0) || dx.abs() == dy.abs() {
        return Err(());
    }
    if dx.abs() > dy.abs() {
        // Vertical rays at x_top/x_bot, diagonal segment across the band.
        let s = i128::from(dx.signum());
        let sx = Rat::int(i128::from(p.0) + i128::from(q.0));
        let x_top = (sx - Rat::int(i128::from(dy) * s)) / Rat::int(2);
        let x_bot = (sx + Rat::int(i128::from(dy) * s)) / Rat::int(2);
        let y_hi = Rat::int(i128::from(p.1.max(q.1)));
        let y_lo = Rat::int(i128::from(p.1.min(q.1)));
        if dy == 0 {
            return Ok(vec![Piece::Full((x_top, y_hi), (0, 1))]);
        }
        Ok(vec![
            Piece::Ray((x_top, y_hi), (0, 1)),
            Piece::Seg((x_bot, y_lo), (x_top, y_hi)),
            Piece::Ray((x_bot, y_lo), (0, -1)),
        ])
    } else {
        // Mirror case: horizontal rays, diagonal segment.
        let s = i128::from(dy.signum());
        let sy = Rat::int(i128::from(p.1) + i128::from(q.1));
        let y_right = (sy - Rat::int(i128::from(dx) * s)) / Rat::int(2);
        let y_left = (sy + Rat::int(i128::from(dx) * s)) / Rat::int(2);
        let x_hi = Rat::int(i128::from(p.0.max(q.0)));
        let x_lo = Rat::int(i128::from(p.0.min(q.0)));
        if dx == 0 {
            return Ok(vec![Piece::Full((x_hi, y_right), (1, 0))]);
        }
        Ok(vec![
            Piece::Ray((x_hi, y_right), (1, 0)),
            Piece::Seg((x_lo, y_left), (x_hi, y_right)),
            Piece::Ray((x_lo, y_left), (-1, 0)),
        ])
    }
}

/// Exact L1 distance between rational points.
#[cfg(test)]
fn l1_rat(a: (Rat, Rat), b: (Rat, Rat)) -> Rat {
    let abs = |r: Rat| if r < Rat::ZERO { -r } else { r };
    abs(a.0 - b.0) + abs(a.1 - b.1)
}

/// Clips a piece to the closed box [-m, m]², returning segment endpoints.
fn clip(piece: &Piece, m: i128) -> ((Rat, Rat), (Rat, Rat)) {
    let lo = Rat::int(-m);
    let hi = Rat::int(m);
    let clamp_ray = |origin: &(Rat, Rat), dir: (i64, i64)| -> (Rat, Rat) {
        // Our rays are axis-parallel; march the moving coordinate to the
        // box edge.
        match dir {
            (0, 1) => (origin.0, hi),
            (0, -1) => (origin.0, lo),
            (1, 0) => (hi, origin.1),
            (-1, 0) => (lo, origin.1),
            _ => unreachable!("rays are axis-parallel by construction"),
        }
    };
    match piece {
        Piece::Seg(a, b) => (*a, *b),
        Piece::Ray(a, d) => (*a, clamp_ray(a, *d)),
        Piece::Full(a, d) => {
            let fwd = clamp_ray(a, *d);
            let back = clamp_ray(a, (-d.0, -d.1));
            (back, fwd)
        }
    }
}

/// The supporting canonical line of a rational segment.
fn supporting_line(a: (Rat, Rat), b: (Rat, Rat)) -> Line {
    // Direction (dx, dy); line: dy·x − dx·y = dy·ax − dx·ay, scaled to
    // integers by the common denominator.
    let dx = b.0 - a.0;
    let dy = b.1 - a.1;
    let ca = dy.num() * dx.den();
    let cb = -(dx.num() * dy.den());
    // c = ca·ax + cb·ay with rational ax, ay: scale by their denominators.
    let scale = a.0.den() * a.1.den();
    let c = ca * a.0.num() * a.1.den() + cb * a.1.num() * a.0.den();
    Line::new(ca * scale / scale.signum().max(1), cb * scale / scale.signum().max(1), c)
}

/// Parameter of a point along a canonical line (a, b, c): t = b·x − a·y.
fn param(line: &Line, p: (Rat, Rat)) -> Rat {
    Rat::int(line.b()) * p.0 - Rat::int(line.a()) * p.1
}

/// Point on a canonical line at parameter t.
fn point_at(line: &Line, t: Rat) -> (Rat, Rat) {
    let n = Rat::int(line.a() * line.a() + line.b() * line.b());
    let p0 = (Rat::new(line.a() * line.c(), 1) / n, Rat::new(line.b() * line.c(), 1) / n);
    let s = t / n;
    (p0.0 + s * Rat::int(line.b()), p0.1 - s * Rat::int(line.a()))
}

struct Disjoint {
    parent: Vec<usize>,
}

impl Disjoint {
    fn new(n: usize) -> Self {
        Disjoint { parent: (0..n).collect() }
    }
    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// A closed segment between two rational points.
pub type RatSeg = ((Rat, Rat), (Rat, Rat));

/// Counts the faces of an arrangement of closed rational segments.
///
/// Segments may overlap collinearly, share endpoints or cross; the count
/// is exact.  This is the general engine behind [`l1_cells`]; it is public
/// so other piecewise-linear metrics can reuse it.
pub fn segment_arrangement_faces(segments: &[RatSeg]) -> u128 {
    // Group by supporting line; store per-line sorted intervals in the
    // line's canonical parameter.
    let mut by_line: BTreeMap<Line, Vec<(Rat, Rat)>> = BTreeMap::new();
    for &(a, b) in segments {
        assert!(a != b, "zero-length segment");
        let line = supporting_line(a, b);
        let (ta, tb) = (param(&line, a), param(&line, b));
        let iv = if ta <= tb { (ta, tb) } else { (tb, ta) };
        by_line.entry(line).or_default().push(iv);
    }
    // Merge overlapping/touching intervals per line.
    let lines: Vec<(Line, Vec<(Rat, Rat)>)> = by_line
        .into_iter()
        .map(|(line, mut ivs)| {
            ivs.sort();
            let mut merged: Vec<(Rat, Rat)> = Vec::with_capacity(ivs.len());
            for iv in ivs {
                match merged.last_mut() {
                    Some(last) if iv.0 <= last.1 => {
                        if iv.1 > last.1 {
                            last.1 = iv.1;
                        }
                    }
                    _ => merged.push(iv),
                }
            }
            (line, merged)
        })
        .collect();

    let inside = |ivs: &[(Rat, Rat)], t: Rat| ivs.iter().any(|&(s, e)| s <= t && t <= e);

    // Vertices: pairwise line intersections that land inside both interval
    // unions, plus every interval endpoint.
    let mut vertex_ids: BTreeMap<(Rat, Rat), usize> = BTreeMap::new();
    let mut per_line_ts: Vec<BTreeSet<Rat>> = vec![BTreeSet::new(); lines.len()];
    let intern = |vertex_ids: &mut BTreeMap<(Rat, Rat), usize>, p: (Rat, Rat)| -> usize {
        let next = vertex_ids.len();
        *vertex_ids.entry(p).or_insert(next)
    };
    for i in 0..lines.len() {
        for &(s, e) in &lines[i].1 {
            for t in [s, e] {
                let p = point_at(&lines[i].0, t);
                intern(&mut vertex_ids, p);
                per_line_ts[i].insert(t);
            }
        }
        for j in (i + 1)..lines.len() {
            if let Some(p) = lines[i].0.intersect(&lines[j].0) {
                let (ti, tj) = (param(&lines[i].0, p), param(&lines[j].0, p));
                if inside(&lines[i].1, ti) && inside(&lines[j].1, tj) {
                    intern(&mut vertex_ids, p);
                    per_line_ts[i].insert(ti);
                    per_line_ts[j].insert(tj);
                }
            }
        }
    }

    // Edges: consecutive vertices inside each merged interval.
    let mut edge_count: u128 = 0;
    let mut dsu = Disjoint::new(vertex_ids.len());
    for (i, (line, ivs)) in lines.iter().enumerate() {
        for &(s, e) in ivs {
            let ts: Vec<Rat> =
                per_line_ts[i].iter().copied().filter(|&t| s <= t && t <= e).collect();
            debug_assert!(ts.len() >= 2, "interval endpoints are vertices");
            for w in ts.windows(2) {
                let a = vertex_ids[&point_at(line, w[0])];
                let b = vertex_ids[&point_at(line, w[1])];
                edge_count += 1;
                dsu.union(a, b);
            }
        }
    }

    // Components among vertices that carry edges (isolated vertices are
    // impossible: every vertex lies on some interval).
    let mut roots: BTreeSet<usize> = BTreeSet::new();
    for v in 0..vertex_ids.len() {
        roots.insert(dsu.find(v));
    }
    let v = vertex_ids.len() as u128;
    let c = roots.len() as u128;
    // Euler: faces excluding the outer face (ordered to stay in u128).
    edge_count + c - v
}

/// The exact number of distance permutations of integer sites in the L1
/// plane.
///
/// Exact counterpart of the paper's pixel experiments; errors on
/// coincident or diagonal (|Δx| = |Δy|) site pairs.
pub fn l1_cells(sites: &[(i64, i64)]) -> Result<u128, L1ExactError> {
    if sites.len() < 2 {
        return Ok(1);
    }
    // Box beyond every site and every bisector feature: bisector kinks
    // and pairwise intersections live within the sites' coordinate span
    // (plus half-spans); 4·(span+1) is comfortably beyond.
    let max_abs = sites.iter().flat_map(|&(x, y)| [x.abs(), y.abs()]).max().expect("non-empty");
    let m = 4 * (i128::from(max_abs) + 1);

    let mut segments: Vec<RatSeg> = Vec::new();
    for i in 0..sites.len() {
        for j in (i + 1)..sites.len() {
            if sites[i] == sites[j] {
                return Err(L1ExactError::DuplicateSites(i, j));
            }
            let pieces =
                l1_bisector(sites[i], sites[j]).map_err(|()| L1ExactError::DegeneratePair(i, j))?;
            for piece in &pieces {
                segments.push(clip(piece, m));
            }
        }
    }
    // The bounding box itself.
    let (lo, hi) = (Rat::int(-m), Rat::int(m));
    segments.push(((lo, lo), (hi, lo)));
    segments.push(((hi, lo), (hi, hi)));
    segments.push(((hi, hi), (lo, hi)));
    segments.push(((lo, hi), (lo, lo)));

    Ok(segment_arrangement_faces(&segments))
}

/// The exact number of distance permutations of integer sites in the L∞
/// plane, via the rotation (x, y) ↦ (x+y, x−y) that carries L∞ to L1.
pub fn linf_cells(sites: &[(i64, i64)]) -> Result<u128, L1ExactError> {
    let rotated: Vec<(i64, i64)> = sites.iter().map(|&(x, y)| (x + y, x - y)).collect();
    l1_cells(&rotated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::{adaptive_count, BBox};
    use dp_metric::{LInf, L1};
    use dp_theory::n_euclidean;

    fn census_l1(sites_i: &[(i64, i64)], scale: f64) -> usize {
        let sites: Vec<Vec<f64>> =
            sites_i.iter().map(|&(x, y)| vec![x as f64 / scale, y as f64 / scale]).collect();
        let span = 3.0;
        let bbox = BBox { x_min: -span, x_max: span + 1.0, y_min: -span, y_max: span + 1.0 };
        adaptive_count(&L1, &sites, bbox, 64, 7).distinct()
    }

    #[test]
    fn two_sites_two_cells() {
        assert_eq!(l1_cells(&[(0, 0), (5, 2)]), Ok(2));
    }

    #[test]
    fn bisector_pieces_are_exactly_equidistant() {
        // Sample rational points along every piece of every bisector in
        // all four sign quadrants and verify d1(·,p) = d1(·,q) *exactly*.
        let pairs = [
            ((0i64, 0i64), (10i64, 4i64)),
            ((0, 0), (10, -4)),
            ((0, 0), (-10, 4)),
            ((0, 0), (-10, -4)),
            ((0, 0), (4, 10)),
            ((0, 0), (4, -10)),
            ((0, 0), (-4, 10)),
            ((0, 0), (-4, -10)),
            ((51, 90), (70, 12)),
            ((87, 44), (51, 90)),
        ];
        for (p, q) in pairs {
            let pr = (Rat::int(p.0 as i128), Rat::int(p.1 as i128));
            let qr = (Rat::int(q.0 as i128), Rat::int(q.1 as i128));
            for piece in l1_bisector(p, q).unwrap() {
                let (a, b) = clip(&piece, 1000);
                for num in 0..=4i128 {
                    let t = Rat::new(num, 4);
                    let pt = (a.0 + t * (b.0 - a.0), a.1 + t * (b.1 - a.1));
                    assert_eq!(
                        l1_rat(pt, pr),
                        l1_rat(pt, qr),
                        "pair {p:?}-{q:?} point off bisector"
                    );
                }
            }
        }
    }

    #[test]
    fn axis_aligned_pair_is_a_straight_line() {
        assert_eq!(l1_cells(&[(0, 0), (6, 0)]), Ok(2));
        assert_eq!(l1_cells(&[(0, 0), (0, 6)]), Ok(2));
    }

    #[test]
    fn diagonal_pair_rejected() {
        assert_eq!(l1_cells(&[(0, 0), (3, 3)]), Err(L1ExactError::DegeneratePair(0, 1)));
        assert_eq!(l1_cells(&[(0, 0), (4, -4)]), Err(L1ExactError::DegeneratePair(0, 1)));
    }

    #[test]
    fn duplicate_sites_rejected() {
        assert_eq!(l1_cells(&[(1, 1), (1, 1)]), Err(L1ExactError::DuplicateSites(0, 1)));
    }

    #[test]
    fn figure4_configuration_has_exactly_18_cells() {
        // The Fig 3/4 sites (scaled to integers): the paper's pixel count
        // of 18 for L1, now exact.
        let sites = [(9867i64, 5630), (3364, 5875), (4702, 8210), (8423, 3812)];
        assert_eq!(l1_cells(&sites), Ok(18));
    }

    #[test]
    fn collinear_horizontal_sites_reduce_to_1d() {
        // Sites on a horizontal line: every bisector is a vertical line;
        // the count equals the 1-D midpoint count.
        let xs = [0i64, 3, 10, 21];
        let sites: Vec<(i64, i64)> = xs.iter().map(|&x| (x, 0)).collect();
        assert_eq!(l1_cells(&sites).unwrap(), crate::oned::exact_count_1d(&xs));
    }

    #[test]
    fn exact_count_matches_adaptive_census() {
        let cases: Vec<Vec<(i64, i64)>> = vec![
            vec![(12, 31), (87, 44), (51, 90), (70, 12)],
            vec![(5, 60), (90, 10), (40, 35), (66, 77), (15, 15)],
            vec![(10, 20), (80, 25), (45, 70)],
        ];
        for sites in &cases {
            let exact = l1_cells(sites).unwrap();
            let census = census_l1(sites, 50.0);
            assert_eq!(census as u128, exact, "sites {sites:?}");
        }
    }

    #[test]
    fn l1_counts_bounded_by_theorem9_and_factorial() {
        let sites = vec![(5i64, 60), (90, 10), (40, 35), (66, 77), (15, 15)];
        let cells = l1_cells(&sites).unwrap();
        let fact: u128 = (1..=5u128).product();
        assert!(cells <= fact);
        // Theorem 9 d=2 bound: S_2(2^4 * C(5,2)) = S_2(160), enormous.
        assert!(cells <= dp_theory::cake_pieces(2, 160).unwrap());
    }

    #[test]
    fn linf_transform_matches_direct_census() {
        let sites = [(12i64, 31), (87, 44), (51, 90), (70, 13)];
        let exact = linf_cells(&sites).unwrap();
        let sites_f: Vec<Vec<f64>> =
            sites.iter().map(|&(x, y)| vec![x as f64 / 50.0, y as f64 / 50.0]).collect();
        let bbox = BBox { x_min: -3.0, x_max: 4.0, y_min: -3.0, y_max: 4.0 };
        let census = adaptive_count(&LInf, &sites_f, bbox, 64, 7).distinct();
        assert_eq!(census as u128, exact);
    }

    #[test]
    fn linf_rejects_axis_aligned_pairs() {
        // (0,0)-(4,0): rotated to (4,4)-difference — diagonal in L1 space.
        assert!(matches!(linf_cells(&[(0, 0), (4, 0)]), Err(L1ExactError::DegeneratePair(0, 1))));
    }

    #[test]
    fn l1_vs_euclidean_never_exceeds_in_small_2d_searches() {
        // The paper found no 2-D counterexample (its L1 informal maximum
        // 18 equals N_{2,2}(4)); spot-check k = 4 over pseudo-random
        // integer site sets.
        let mut state = 777u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) % 97) as i64
        };
        let e_max = n_euclidean(2, 4).unwrap();
        let mut best = 0u128;
        let mut tried = 0;
        while tried < 12 {
            let sites: Vec<(i64, i64)> = (0..4).map(|_| (next(), next())).collect();
            match l1_cells(&sites) {
                Ok(cells) => {
                    tried += 1;
                    best = best.max(cells);
                    assert!(cells <= e_max, "2-D L1 counterexample?! {sites:?} -> {cells}");
                }
                Err(_) => continue, // degenerate draw; try again
            }
        }
        assert!(best >= 10, "all draws implausibly degenerate (best {best})");
    }

    #[test]
    fn segment_engine_reproduces_line_arrangement_counts() {
        // Three long segments in general position behave like lines
        // within their box: lazy-caterer 7 faces + the box ring faces.
        // Simpler: a triangle has 2 faces (inside + nothing else bounded):
        // E=3, V=3, C=1 -> F = 3-3+1 = 1... plus outer not counted: the
        // triangle's single bounded face.
        let a = (Rat::int(0), Rat::int(0));
        let b = (Rat::int(4), Rat::int(0));
        let c = (Rat::int(0), Rat::int(4));
        let faces = segment_arrangement_faces(&[(a, b), (b, c), (c, a)]);
        assert_eq!(faces, 1);
    }

    #[test]
    fn segment_engine_handles_collinear_overlap() {
        // Two overlapping collinear segments + a crossing one: the
        // overlap must not double-count edges.
        let s1 = ((Rat::int(0), Rat::int(0)), (Rat::int(10), Rat::int(0)));
        let s2 = ((Rat::int(5), Rat::int(0)), (Rat::int(15), Rat::int(0)));
        let cross = ((Rat::int(7), Rat::int(-5)), (Rat::int(7), Rat::int(5)));
        // One horizontal run crossed once: no bounded faces.
        assert_eq!(segment_arrangement_faces(&[s1, s2, cross]), 0);
    }
}
