//! Exact rational arithmetic over `i128`.
//!
//! Bisector lines of integer sites have small integer coefficients, and
//! pairwise line intersections have rational coordinates whose numerators
//! and denominators stay minuscule compared to `i128` — so an
//! overflow-*checked* fraction type gives exact arrangement combinatorics
//! with no big-integer dependency.  Any overflow panics loudly rather than
//! silently corrupting a count.

use std::cmp::Ordering;
use std::fmt;

/// A reduced fraction `num/den` with `den > 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rat {
    num: i128,
    den: i128,
}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

impl Rat {
    /// Zero.
    pub const ZERO: Rat = Rat { num: 0, den: 1 };
    /// One.
    pub const ONE: Rat = Rat { num: 1, den: 1 };

    /// Creates `num/den`, reduced, with positive denominator.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Rat {
        assert_ne!(den, 0, "zero denominator");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num, den).max(1);
        Rat { num: sign * num / g, den: (den / g).abs() }
    }

    /// An integer as a rational.
    pub fn int(v: i128) -> Rat {
        Rat { num: v, den: 1 }
    }

    /// Numerator (after reduction; sign lives here).
    pub fn num(&self) -> i128 {
        self.num
    }

    /// Denominator (always positive).
    pub fn den(&self) -> i128 {
        self.den
    }

    /// `f64` approximation for rendering only; combinatorics never uses it.
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// True iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    fn checked_bin(
        self,
        other: Rat,
        f: impl Fn(i128, i128, i128, i128) -> Option<(i128, i128)>,
    ) -> Rat {
        let (num, den) =
            f(self.num, self.den, other.num, other.den).expect("rational arithmetic overflow");
        Rat::new(num, den)
    }
}

impl std::ops::Add for Rat {
    type Output = Rat;

    /// Checked addition (panics on i128 overflow rather than wrapping).
    fn add(self, other: Rat) -> Rat {
        self.checked_bin(other, |an, ad, bn, bd| {
            let num = an.checked_mul(bd)?.checked_add(bn.checked_mul(ad)?)?;
            Some((num, ad.checked_mul(bd)?))
        })
    }
}

impl std::ops::Sub for Rat {
    type Output = Rat;

    /// Checked subtraction.
    fn sub(self, other: Rat) -> Rat {
        self + (-other)
    }
}

impl std::ops::Mul for Rat {
    type Output = Rat;

    /// Checked multiplication.
    fn mul(self, other: Rat) -> Rat {
        self.checked_bin(other, |an, ad, bn, bd| Some((an.checked_mul(bn)?, ad.checked_mul(bd)?)))
    }
}

impl std::ops::Div for Rat {
    type Output = Rat;

    /// Checked division.
    ///
    /// # Panics
    /// Panics if `other` is zero.
    fn div(self, other: Rat) -> Rat {
        assert!(!other.is_zero(), "division by zero rational");
        self.checked_bin(other, |an, ad, bn, bd| Some((an.checked_mul(bd)?, ad.checked_mul(bn)?)))
    }
}

impl std::ops::Neg for Rat {
    type Output = Rat;

    fn neg(self) -> Rat {
        Rat { num: -self.num, den: self.den }
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Rat) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Rat) -> Ordering {
        // Cross-multiply with checked arithmetic; denominators positive.
        let lhs = self.num.checked_mul(other.den).expect("rational compare overflow");
        let rhs = other.num.checked_mul(self.den).expect("rational compare overflow");
        lhs.cmp(&rhs)
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_reduces() {
        let r = Rat::new(6, -4);
        assert_eq!(r.num(), -3);
        assert_eq!(r.den(), 2);
        assert_eq!(Rat::new(0, 5), Rat::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Rat::new(1, 2);
        let b = Rat::new(1, 3);
        assert_eq!(a + b, Rat::new(5, 6));
        assert_eq!(a - b, Rat::new(1, 6));
        assert_eq!(a * b, Rat::new(1, 6));
        assert_eq!(a / b, Rat::new(3, 2));
        assert_eq!(-a, Rat::new(-1, 2));
    }

    #[test]
    fn ordering() {
        assert!(Rat::new(1, 3) < Rat::new(1, 2));
        assert!(Rat::new(-1, 2) < Rat::ZERO);
        assert_eq!(Rat::new(2, 4), Rat::new(1, 2));
        let mut v = vec![Rat::new(3, 4), Rat::new(-1, 5), Rat::ONE, Rat::ZERO];
        v.sort();
        assert_eq!(v, vec![Rat::new(-1, 5), Rat::ZERO, Rat::new(3, 4), Rat::ONE]);
    }

    #[test]
    fn equality_is_canonical_for_hashing() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(Rat::new(2, 4));
        s.insert(Rat::new(1, 2));
        s.insert(Rat::new(-3, -6));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn display() {
        assert_eq!(Rat::new(7, 1).to_string(), "7");
        assert_eq!(Rat::new(-1, 3).to_string(), "-1/3");
    }

    #[test]
    fn to_f64_approximates() {
        assert!((Rat::new(1, 3).to_f64() - 1.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_rejected() {
        let _ = Rat::new(1, 0);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_rejected() {
        let _ = Rat::ONE / Rat::ZERO;
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_detected_not_wrapped() {
        let huge = Rat::int(i128::MAX / 2);
        let _ = huge * huge;
    }
}
