//! Exact cell counting for line arrangements in the plane.
//!
//! For an arrangement of m *distinct* lines, the number of faces is
//!
//! ```text
//! F  =  1 + m + Σ_v (λ(v) − 1)
//! ```
//!
//! summed over distinct intersection points v, where λ(v) is the number of
//! lines through v.  (General position gives λ ≡ 2 and the classical
//! 1 + m + C(m,2); parallels simply contribute no points; concurrences
//! collapse several pair-intersections into one point and lose faces —
//! exactly the effect Theorem 7's recurrence accounts for.)
//!
//! Every face of the bisector arrangement carries a distinct distance
//! permutation and vice versa (two faces are separated by some bisector
//! A|B, so the relative order of A and B differs), hence
//! [`euclidean_cells`] computes N(sites) for the Euclidean plane exactly.

use crate::line::Line;
use crate::rational::Rat;
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// Counts the faces of the arrangement of the given lines exactly.
///
/// Coincident duplicates in the input are merged first.  O(m² log m).
pub fn count_cells(lines: &[Line]) -> u128 {
    let distinct: BTreeSet<Line> = lines.iter().copied().collect();
    let lines: Vec<Line> = distinct.into_iter().collect();
    let m = lines.len() as u128;

    // Group pairwise intersection points; count distinct lines per point.
    let mut through: BTreeMap<(Rat, Rat), BTreeSet<usize>> = BTreeMap::new();
    for i in 0..lines.len() {
        for j in (i + 1)..lines.len() {
            if let Some(p) = lines[i].intersect(&lines[j]) {
                let entry = through.entry(p).or_default();
                entry.insert(i);
                entry.insert(j);
            }
        }
    }

    let vertex_excess: u128 = through.values().map(|ls| (ls.len() - 1) as u128).sum();
    1 + m + vertex_excess
}

/// The exact number of distance permutations of k distinct integer sites
/// in the Euclidean plane: the cell count of their bisector arrangement.
///
/// # Panics
/// Panics if any two sites coincide.
pub fn euclidean_cells(sites: &[(i64, i64)]) -> u128 {
    if sites.len() < 2 {
        return 1;
    }
    let mut lines = Vec::with_capacity(sites.len() * (sites.len() - 1) / 2);
    for i in 0..sites.len() {
        for j in (i + 1)..sites.len() {
            lines.push(Line::bisector(sites[i], sites[j]));
        }
    }
    count_cells(&lines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_theory::n_euclidean;

    #[test]
    fn no_lines_one_cell() {
        assert_eq!(count_cells(&[]), 1);
    }

    #[test]
    fn single_line_two_cells() {
        assert_eq!(count_cells(&[Line::new(1, 0, 0)]), 2);
    }

    #[test]
    fn general_position_matches_lazy_caterer() {
        // x=0, y=0, x+y=1: three lines, three intersection points, 7 faces.
        let lines = [Line::new(1, 0, 0), Line::new(0, 1, 0), Line::new(1, 1, 1)];
        assert_eq!(count_cells(&lines), 7);
    }

    #[test]
    fn three_concurrent_lines_six_cells() {
        let lines = [Line::new(1, 0, 0), Line::new(0, 1, 0), Line::new(1, 1, 0)];
        assert_eq!(count_cells(&lines), 6);
    }

    #[test]
    fn parallel_lines_stack() {
        let lines = [Line::new(1, 0, 0), Line::new(1, 0, 1), Line::new(1, 0, 2)];
        assert_eq!(count_cells(&lines), 4);
    }

    #[test]
    fn duplicate_lines_merged() {
        let lines = [Line::new(1, 0, 0), Line::new(2, 0, 0), Line::new(-3, 0, 0)];
        assert_eq!(count_cells(&lines), 2);
    }

    #[test]
    fn grid_arrangement() {
        // 2 horizontals x 2 verticals: 9 faces.
        let lines =
            [Line::new(1, 0, 0), Line::new(1, 0, 1), Line::new(0, 1, 0), Line::new(0, 1, 1)];
        assert_eq!(count_cells(&lines), 9);
    }

    #[test]
    fn two_sites_two_cells() {
        assert_eq!(euclidean_cells(&[(0, 0), (4, 2)]), 2);
    }

    #[test]
    fn three_generic_sites_six_cells() {
        // N_{2,2}(3) = 6: three concurrent bisectors through the
        // circumcentre.
        assert_eq!(euclidean_cells(&[(0, 0), (7, 1), (3, 9)]), 6);
    }

    #[test]
    fn three_collinear_sites_still_six_or_fewer() {
        // Collinear sites have parallel bisectors: 3 parallel lines, 4
        // cells.
        assert_eq!(euclidean_cells(&[(0, 0), (2, 2), (6, 6)]), 4);
    }

    #[test]
    fn four_generic_sites_give_paper_figure3_count() {
        // Fig 3 of the paper: four sites in general position, 18 cells.
        let sites = [(0, 0), (10, 1), (3, 8), (7, 12)];
        assert_eq!(euclidean_cells(&sites), 18);
        assert_eq!(u128::from(18u32), n_euclidean(2, 4).unwrap());
    }

    #[test]
    fn generic_sites_match_table1_row2() {
        // Pseudo-random integer sites (large spread => almost surely
        // generic): the exact arrangement count must equal N_{2,2}(k).
        let sites =
            [(13, 907), (411, 203), (-655, 541), (871, -333), (-245, -797), (509, 650), (-37, 150)];
        for k in 2..=sites.len() {
            let count = euclidean_cells(&sites[..k]);
            assert_eq!(count, n_euclidean(2, k as u32).unwrap(), "k={k}: degenerate site set?");
        }
    }

    #[test]
    fn square_sites_are_degenerate() {
        // The four corners of a square are maximally degenerate: the six
        // bisectors collapse to four distinct lines (x=1, y=1 and the two
        // diagonals), all concurrent at the centre — 8 sectors, far below
        // the generic 18.
        let sites = [(0, 0), (2, 0), (2, 2), (0, 2)];
        assert_eq!(euclidean_cells(&sites), 8);
    }

    #[test]
    fn never_exceeds_euclidean_recurrence() {
        // Degenerate or not, the exact count is bounded by Theorem 7.
        let site_sets: Vec<Vec<(i64, i64)>> = vec![
            vec![(0, 0), (1, 0), (2, 0), (3, 0)],         // collinear
            vec![(0, 0), (2, 0), (2, 2), (0, 2)],         // square
            vec![(0, 0), (4, 0), (2, 3), (2, -3)],        // kite
            vec![(0, 0), (6, 0), (3, 5), (3, 1), (3, 9)], // mixed
        ];
        for sites in &site_sets {
            let cells = euclidean_cells(sites);
            let bound = n_euclidean(2, sites.len() as u32).unwrap();
            assert!(cells <= bound, "{sites:?}: {cells} > {bound}");
        }
    }
}
