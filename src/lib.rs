//! # distance-permutations
//!
//! A complete Rust reproduction of Matthew Skala's *Counting distance
//! permutations* (SISAP 2008 / Journal of Discrete Algorithms 2009).
//!
//! Given k fixed reference **sites** in a metric space, the *distance
//! permutation* of a point is the order of the sites by distance from it
//! (ties to the lower site index).  Permutation-based indexes such as the
//! SISAP `distperm` type store exactly that per database element; this
//! workspace reproduces the paper's analysis of **how many distinct
//! distance permutations can occur** — exact recurrences for Euclidean
//! space, the C(k,2)+1 tree-metric bound, O(k^{2d}) bounds for L1/L∞,
//! the all-k!-permutations construction, the experimental tables and the
//! L1 counterexample to Euclidean equivalence.
//!
//! This façade crate re-exports the workspace:
//!
//! * [`metric`] (dp-metric) — metric-space substrate (Lp, strings, trees…)
//! * [`permutation`] (dp-permutation) — the permutation machinery
//! * [`theory`] (dp-theory) — Theorems 4–9 as executable code
//! * [`geometry`] (dp-geometry) — exact bisector arrangements, figures
//! * [`datasets`] (dp-datasets) — synthetic SISAP-style databases
//! * [`index`] (dp-index) — the unified proximity-query API
//!   (`ProximityIndex`/`Searcher` with native per-query stats, parallel
//!   batch serving, build-by-spec) over LinearScan/AESA/LAESA/distperm
//!   (four candidate orderings)/truncated-prefix/iAESA/VP/GH/BK trees,
//!   pivot selection
//! * [`store`] (dp-store) — versioned on-disk index container
//!   (`distperm build` / `--load`): checksummed sections, typed-error
//!   total reader, bit-identical reload
//! * [`core`] (dp-core) — counting, experiments, dimension estimation,
//!   the one-call database survey
//!
//! Storage layouts for permutation columns (raw packed, codebook ids,
//! Huffman entropy coding) live in [`permutation`]; the `distperm`
//! command-line tool (crate `dp-cli`) exposes the measurements on SISAP
//! ASCII files without writing Rust.
//!
//! ## Quickstart
//!
//! ```
//! use distance_permutations::core::count::count_permutations;
//! use distance_permutations::core::spaces::{theoretical_max, SpaceKind};
//! use distance_permutations::datasets::uniform_unit_cube;
//! use distance_permutations::metric::L2;
//!
//! // 2-D uniform data, 5 random sites.
//! let db = uniform_unit_cube(20_000, 2, 7);
//! let sites: Vec<Vec<f64>> = db[..5].to_vec();
//! let report = count_permutations(&L2, &sites, &db);
//!
//! // Theorem 7: at most N_{2,2}(5) = 46 distinct permutations can occur.
//! let max = theoretical_max(SpaceKind::Euclidean { d: 2 }, 5).unwrap();
//! assert!(report.distinct as u128 <= max);
//! assert_eq!(max, 46);
//! ```

#![forbid(unsafe_code)]

pub use dp_core as core;
pub use dp_datasets as datasets;
pub use dp_geometry as geometry;
pub use dp_index as index;
pub use dp_metric as metric;
pub use dp_permutation as permutation;
pub use dp_store as store;
pub use dp_theory as theory;
