//! Tree metrics end to end: the prefix distance of Definition 3 (library
//! call numbers, Fig 5), Theorem 4's C(k,2)+1 ceiling, and Corollary 5's
//! path construction achieving it exactly.
//!
//! Run with: `cargo run --release --example tree_metrics`

use distance_permutations::metric::reconstruct::reconstruct_tree;
use distance_permutations::metric::{Metric, PrefixDistance};
use distance_permutations::permutation::counter::count_distinct;
use distance_permutations::permutation::distance_permutation;
use distance_permutations::theory::{corollary5_path, tree_bound};

fn main() {
    // Fig 5's idea: items in a hierarchy keyed by call-number-like
    // strings; longer common prefix = more closely related.
    let shelf: Vec<String> = [
        "qa76",
        "qa76.9",
        "qa76.9.d3",
        "qa76.9.d35",
        "qa76.76",
        "qa9",
        "qa9.58",
        "z699",
        "z699.35",
        "z699.5",
    ]
    .map(String::from)
    .to_vec();

    println!("prefix distances (Definition 3): d = |x| + |y| - 2*lcp");
    for pair in [("qa76.9.d3", "qa76.9.d35"), ("qa76.9", "qa9"), ("qa76", "z699")] {
        let d = PrefixDistance.distance(pair.0, pair.1);
        println!("  d({:?}, {:?}) = {d}", pair.0, pair.1);
    }

    // Distance permutations in the prefix-metric tree, with 4 sites.
    let sites: Vec<String> = ["qa76.9", "qa9", "z699", "qa76.76"].map(String::from).to_vec();
    println!("\ndistance permutations of the shelf w.r.t. 4 call-number sites:");
    for item in &shelf {
        let p = distance_permutation(&PrefixDistance, &sites, item);
        println!("  {item:<12} -> {}", p.display_one_based());
    }
    let distinct = count_distinct(&PrefixDistance, &sites, &shelf);
    println!(
        "distinct: {distinct}; Theorem 4 ceiling for any tree metric: C(4,2)+1 = {}",
        tree_bound(4)
    );
    assert!(distinct as u128 <= tree_bound(4));

    // Buneman's theorem, constructively: the shelf's prefix metric embeds
    // in a weighted tree, which we can rebuild from distances alone.
    let d = |i: usize, j: usize| u64::from(PrefixDistance.distance(&shelf[i], &shelf[j]));
    let rec = reconstruct_tree(shelf.len(), d).expect("prefix metric is a tree metric");
    println!(
        "\nreconstructed the shelf's tree from its distance matrix: {} vertices \
         ({} Steiner), all {} pairwise distances verified",
        rec.tree.len(),
        rec.steiner_count,
        shelf.len() * (shelf.len() - 1) / 2
    );

    // Corollary 5: the path that achieves the ceiling exactly.
    println!("\nCorollary 5 construction:");
    for k in [4u32, 6, 8, 10] {
        let (tree, sites) = corollary5_path(k);
        let db: Vec<usize> = tree.vertices().collect();
        let observed = count_distinct(&tree.metric(), &sites, &db);
        println!(
            "  k = {k:>2}: path of {:>4} edges, sites at {:?} -> {observed} permutations \
             (bound {})",
            tree.len() - 1,
            sites,
            tree_bound(k)
        );
        assert_eq!(observed as u128, tree_bound(k));
    }
}
