//! The paper's §5 suggestion, as a tool: estimate the *effective
//! dimension* of a database from its distance-permutation count, by
//! placing the count on the uniform-Euclidean reference curve.
//!
//! Unlike the intrinsic dimensionality ρ (which depends on the data's
//! probability distribution), the permutation count depends only on which
//! points exist at all.  Both statistics are printed side by side.
//!
//! Run with: `cargo run --release --example dimensionality`

use distance_permutations::core::count::count_permutations;
use distance_permutations::core::dimension::{estimate_dimension, ReferenceProfile};
use distance_permutations::datasets::intrinsic_dimensionality;
use distance_permutations::datasets::vectors::{clustered, curve_embedded, uniform_unit_cube};
use distance_permutations::datasets::{colors, nasa};
use distance_permutations::metric::L2;

const K: usize = 8;
const N: usize = 20_000;

fn main() {
    println!("building the uniform-Euclidean reference curve (k = {K}, n = {N})…");
    let profile = ReferenceProfile::build(K, N, 8, 5, 2024, 8);
    for (d, mean) in &profile.curve {
        println!("  d = {d}: mean {mean:.1} distinct permutations");
    }
    println!();

    let cases: Vec<(&str, Vec<Vec<f64>>)> = vec![
        ("uniform 2-D", uniform_unit_cube(N, 2, 1)),
        ("uniform 5-D", uniform_unit_cube(N, 5, 2)),
        ("curve in 6-D (intrinsically 1-D)", curve_embedded(N, 6, 3)),
        ("5 clusters in 8-D", clustered(N, 8, 5, 0.02, 4)),
        ("colors analogue (112-D histograms)", colors::generate_histograms(N, 5)),
        ("nasa analogue (20-D, rank ~5)", nasa::generate_features(N, 6)),
    ];

    println!("{:<36} {:>10} {:>12} {:>10}", "database", "perms", "perm-dim", "rho");
    for (name, db) in cases {
        let sites: Vec<Vec<f64>> = db[..K].to_vec();
        let observed = count_permutations(&L2, &sites, &db).distinct;
        let est = estimate_dimension(observed, &profile);
        let rho = intrinsic_dimensionality(&L2, &db, 2000, 7);
        println!("{name:<36} {observed:>10} {est:>12.2} {rho:>10.2}");
    }
    println!("\nthe permutation dimension tracks *intrinsic* structure: the embedded");
    println!("curve and the low-rank sets read far below their embedding dimension —");
    println!("the paper's observation for the nasa/colors/listeria databases.");
}
