//! Streaming survey in bounded memory — the same report, a fraction of
//! the working set.
//!
//! The flat survey normally buffers one packed key per database row
//! before sorting.  `survey_database_flat_sharded` streams the keys
//! through fixed-size shards instead: at most `shard_rows` keys are
//! buffered at once, each full shard is radix-sorted and merged into a
//! frontier holding one `(key, count)` run per *distinct* permutation.
//! Because merging sorted multiset runs is associative, the report —
//! floats included — is bit-identical to the buffer-everything engine;
//! only the working set changes.  This example runs both engines on the
//! same database, checks the reports render identically, and then
//! drives a [`ShardedCounter`] directly to show the measured high-water
//! working set next to the buffer-everything footprint.
//!
//! Run with: `cargo run --release --example sharded_survey`

use distance_permutations::core::survey_flat::survey_database_flat_sharded;
use distance_permutations::core::SurveyConfig;
use distance_permutations::datasets::vectors::uniform_unit_cube_flat;
use distance_permutations::metric::{TransposedSites, L2};
use distance_permutations::permutation::compute::packed_keys_flat;
use distance_permutations::permutation::ShardedCounter;

fn main() {
    let n = 200_000;
    let dim = 2;
    let k = 16;
    let shard_rows = 65_536;
    let db = uniform_unit_cube_flat(n, dim, 1);
    let config = SurveyConfig { ks: vec![k], seed: 7, rho_pairs: 10_000, reference: None };

    // shard_rows = 0 is the buffer-everything engine; any other value
    // bounds the buffered keys without changing a single output bit.
    let inmem = survey_database_flat_sharded(&L2, &db, &config, 1, 0);
    let sharded = survey_database_flat_sharded(&L2, &db, &config, 1, shard_rows);
    let (inmem_text, sharded_text) = (format!("{inmem}"), format!("{sharded}"));
    assert_eq!(inmem_text, sharded_text, "sharded survey must be bit-identical");
    println!("=== k = {k} survey of {n} uniform {dim}-D points (both engines agree) ===");
    println!("{inmem_text}");

    // The memory story, measured rather than asserted: drive the
    // streaming counter over the same keys and read its high-water mark.
    let sites = uniform_unit_cube_flat(k, dim, 2);
    let sites_t = TransposedSites::from_rows(sites.as_flat(), dim);
    let keys: Vec<u128> = packed_keys_flat(&L2, &sites_t, db.as_flat());
    let mut counter = ShardedCounter::<u128>::new(k, shard_rows);
    for &key in &keys {
        counter.insert_key(key);
    }
    counter.flush();
    let key_bytes = std::mem::size_of::<u128>();
    let run_bytes = std::mem::size_of::<(u128, u64)>();
    let buffered = shard_rows.min(keys.len()) * key_bytes;
    let frontier = counter.peak_frontier_entries() * run_bytes;
    let summary = counter.finalize();
    println!("=== streaming counter working set (shard_rows = {shard_rows}) ===");
    println!("buffer-everything: {:>8} KiB ({n} keys)", keys.len() * key_bytes / 1024);
    println!(
        "sharded peak:      {:>8} KiB (one shard + {} distinct runs)",
        (buffered + frontier) / 1024,
        summary.distinct()
    );
}
