//! Truncated permutations: §2's refinement chain as an index knob.
//!
//! Storing only the ℓ nearest sites per element interpolates between the
//! nearest-neighbour Voronoi diagram (ℓ = 1, Fig 1) and the full
//! permutation diagram (ℓ = k, Fig 3).  This example sweeps ℓ and prints,
//! for each length: the number of distinct stored keys (against the
//! theory ceiling), the index size, and the recall of budgeted
//! permutation-ordered 1-NN search — the storage/accuracy trade-off a
//! deployment actually tunes.
//!
//! Run with: `cargo run --release --example prefix_permutations`

use distance_permutations::core::orders::{count_distinct_prefixes, PrefixKind};
use distance_permutations::datasets::uniform_unit_cube;
use distance_permutations::index::laesa::PivotSelection;
use distance_permutations::index::{LinearScan, PrefixPermIndex};
use distance_permutations::metric::L2;
use distance_permutations::theory::prefixes::ordered_prefix_bound;

fn main() {
    let (n, d, k) = (20_000usize, 3usize, 12usize);
    let db = uniform_unit_cube(n, d, 99);
    let queries = uniform_unit_cube(200, d, 100);
    let scan = LinearScan::new(L2, db.clone());
    let truth: Vec<usize> = queries.iter().map(|q| scan.knn(q, 1)[0].id).collect();

    println!("n = {n}, d = {d}, k = {k} sites (MaxMin), 1-NN recall at 5% budget\n");
    println!("{:>3} {:>10} {:>12} {:>12} {:>8}", "l", "distinct", "bound", "bits/elem", "recall");
    for l in 1..=k.min(8) {
        let idx = PrefixPermIndex::build(L2, db.clone(), k, l, PivotSelection::MaxMin);
        let distinct = idx.distinct_prefixes();
        // Cross-check against the one-pass counter.
        let sites: Vec<Vec<f64>> = idx.site_ids().iter().map(|&i| db[i].clone()).collect();
        assert_eq!(distinct, count_distinct_prefixes(&L2, &sites, &db, l, PrefixKind::Ordered));
        let bound = ordered_prefix_bound(d as u32, k as u32, l as u32).unwrap();
        assert!(distinct as u128 <= bound, "count exceeds theory at l={l}");

        let hits = queries
            .iter()
            .zip(&truth)
            .filter(|(q, &t)| idx.knn_approx(q, 1, 0.05).first().map(|n| n.id) == Some(t))
            .count();
        println!(
            "{l:>3} {distinct:>10} {bound:>12} {:>12.1} {:>7.1}%",
            idx.storage_bits_raw() as f64 / n as f64,
            100.0 * hits as f64 / queries.len() as f64
        );
    }
    // The full-length column for comparison (l = k = 12 > 8 prefix-count
    // cap, so report it separately).
    let idx = PrefixPermIndex::build(L2, db, k, k, PivotSelection::MaxMin);
    let hits = queries
        .iter()
        .zip(&truth)
        .filter(|(q, &t)| idx.knn_approx(q, 1, 0.05).first().map(|n| n.id) == Some(t))
        .count();
    println!(
        "{:>3} {:>10} {:>12} {:>12.1} {:>7.1}%  (full permutation)",
        k,
        idx.distinct_prefixes(),
        distance_permutations::theory::n_euclidean(d as u32, k as u32).unwrap(),
        idx.storage_bits_raw() as f64 / n as f64,
        100.0 * hits as f64 / queries.len() as f64
    );
    println!("\nreading: most of the recall arrives by l ≈ 2d, matching §4's");
    println!("observation that permutations carry little information past k ≈ 2d.");
}
