//! Reproduces §5's most striking result: the Euclidean maximum N_{d,2}(k)
//! is *not* a bound for other Lp metrics.  Verifies the paper's Eq. 12
//! sites (3-D L1, k = 5, >96 permutations) and hunts for a fresh
//! counterexample with the randomized protocol that found them.
//!
//! Run with: `cargo run --release --example counterexample_hunt`

use distance_permutations::core::counterexample::{
    eq12_sites, search_counterexample, verify_eq12, SearchMetric,
};
use distance_permutations::theory::n_euclidean;

fn main() {
    println!("the paper's Eq. 12 sites (3-D L1, k = 5):");
    for (i, s) in eq12_sites().iter().enumerate() {
        println!("  x{} = {:?}", i + 1, s);
    }
    let report = verify_eq12(500_000, 99, 8);
    println!(
        "\nsampled distinct permutations: {} > N_3,2(5) = {} -> Euclidean bound broken: {}",
        report.observed,
        report.euclidean_max,
        report.exceeds_euclidean()
    );
    assert!(report.exceeds_euclidean(), "increase the sample size");

    println!("\nhunting a fresh counterexample in 3-D L-infinity with k = 5 …");
    let (sites, rep) = search_counterexample(SearchMetric::LInf, 3, 5, 40, 300_000, 7, 8);
    println!(
        "best found: {} permutations vs Euclidean max {}",
        rep.observed,
        n_euclidean(3, 5).expect("small")
    );
    if rep.exceeds_euclidean() {
        println!("counterexample sites:");
        for (i, s) in sites.iter().enumerate() {
            println!("  x{} = {:?}", i + 1, s);
        }
    } else {
        println!("none found in this budget — rerun with more trials/samples.");
    }
}
