//! Renders the generalized Voronoi diagrams of Figures 1–4 for a random
//! site configuration: nearest-site cells, second-order cells, and the
//! full distance-permutation cells under L2 and L1, plus the exact
//! Euclidean cell count from the rational arrangement counter.
//!
//! Output: PPM images + one SVG in `figures-example/`.
//!
//! Run with: `cargo run --release --example voronoi_figures -- [seed]`

use distance_permutations::geometry::arrangement::euclidean_cells;
use distance_permutations::geometry::render::{render_cells, svg_euclidean_bisectors, CellKey};
use distance_permutations::geometry::sampling::{grid_count, BBox};
use distance_permutations::metric::{L1, L2};
use distance_permutations::theory::n_euclidean;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::fs;

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(10);
    let k = 5usize;
    let mut rng = StdRng::seed_from_u64(seed);
    let sites_i: Vec<(i64, i64)> =
        (0..k).map(|_| (rng.random_range(100..900), rng.random_range(100..900))).collect();
    let sites: Vec<Vec<f64>> =
        sites_i.iter().map(|&(x, y)| vec![x as f64 / 1000.0, y as f64 / 1000.0]).collect();

    let exact = euclidean_cells(&sites_i);
    let emax = n_euclidean(2, k as u32).expect("small");
    println!("sites (seed {seed}): {sites_i:?}");
    println!("exact Euclidean cells: {exact} (maximum for k={k}: {emax})");

    let bbox = BBox { x_min: -0.2, x_max: 1.2, y_min: -0.2, y_max: 1.2 };
    let l1 = grid_count(&L1, &sites, bbox, 600, 600).distinct();
    println!("L1 grid census: {l1} cells");

    let dir = std::path::Path::new("figures-example");
    fs::create_dir_all(dir).expect("create output dir");
    let renders: [(&str, CellKey, bool); 4] = [
        ("nearest.ppm", CellKey::Nearest, false),
        ("second_order.ppm", CellKey::TopTwoUnordered, false),
        ("full_l2.ppm", CellKey::FullPermutation, false),
        ("full_l1.ppm", CellKey::FullPermutation, true),
    ];
    for (name, key, use_l1) in renders {
        let img = if use_l1 {
            render_cells(&L1, &sites, bbox, 512, 512, key)
        } else {
            render_cells(&L2, &sites, bbox, 512, 512, key)
        };
        fs::write(dir.join(name), img.to_ppm()).expect("write ppm");
        println!("wrote figures-example/{name}");
    }
    let svg = svg_euclidean_bisectors(
        &sites_i,
        BBox { x_min: -200.0, x_max: 1200.0, y_min: -200.0, y_max: 1200.0 },
        512.0,
    );
    fs::write(dir.join("bisectors.svg"), svg).expect("write svg");
    println!("wrote figures-example/bisectors.svg");
}
