//! The paper's experimental pipeline, end to end, on files.
//!
//! Section 5: "Our `build-distperm-*` programs write out the permutations
//! in ASCII as a side effect of index generation, so that the number of
//! unique permutations can easily be counted with `sort | uniq | wc`."
//! This example reproduces that workflow byte for byte:
//!
//! 1. generate a synthetic English dictionary and write it in the SISAP
//!    one-word-per-line format;
//! 2. read the file back (as an external user would);
//! 3. build the `distperm` index over Levenshtein distance;
//! 4. dump the ASCII permutation file;
//! 5. count unique lines — and check it equals the in-memory counter.
//!
//! Run with: `cargo run --release --example sisap_pipeline`

use distance_permutations::datasets::dictionary::{generate_words, language_profiles};
use distance_permutations::datasets::sisap_io;
use distance_permutations::index::laesa::PivotSelection;
use distance_permutations::index::DistPermIndex;
use distance_permutations::metric::Levenshtein;
use std::collections::BTreeSet;

fn main() {
    let dir = std::env::temp_dir().join("distperm_sisap_pipeline");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let db_path = dir.join("english.dic");
    let perm_path = dir.join("english.perms");

    // 1. Generate and write the database file.
    let profiles = language_profiles();
    let english = profiles.iter().find(|p| p.name == "english").expect("profile");
    let words = generate_words(english, 20_000, 8);
    sisap_io::write_strings_file(&db_path, &words).expect("write dictionary");
    println!("wrote {} words to {}", words.len(), db_path.display());

    // 2. Read it back — the index sees only the file.
    let db = sisap_io::read_strings_file(&db_path).expect("read dictionary");
    assert_eq!(db.len(), words.len());

    // 3. Build the distperm index (k = 8 sites, the paper's mid column).
    let index = DistPermIndex::build(Levenshtein, db, 8, PivotSelection::Random(41));
    println!("built distperm index: n = {}, k = {}", index.len(), index.k());

    // 4. ASCII dump, exactly like build-distperm-*.
    let ascii = index.export_ascii();
    std::fs::write(&perm_path, &ascii).expect("write permutations");
    println!("dumped permutations to {}", perm_path.display());

    // 5. `sort | uniq | wc -l`, in-process.
    let unique: BTreeSet<&str> = ascii.lines().collect();
    let counter = index.counter();
    println!(
        "unique permutations: {} (ascii) = {} (in-memory counter)",
        unique.len(),
        counter.distinct()
    );
    assert_eq!(unique.len(), counter.distinct());

    // The Table 2 shape: far fewer distinct permutations than both k! and n.
    let kfact = 40_320u64; // 8!
    println!(
        "k! = {kfact}, n = {}; observed {} — the Table 2 phenomenon",
        index.len(),
        counter.distinct()
    );
    assert!((counter.distinct() as u64) < kfact);
    println!("mean occupancy: {:.1} words per permutation", counter.mean_occupancy());

    std::fs::remove_dir_all(&dir).ok();
}
