//! One-call database characterisation — "what would a permutation index
//! cost me, and what does it reveal about my data?"
//!
//! The workflow a downstream user actually runs before choosing an index:
//! [`survey_database`] measures ρ, the distinct-permutation count at each
//! candidate k, the storage cost of every layout, and the paper's §5
//! dimension estimates — here over three databases with very different
//! geometry (a synthetic English dictionary under Levenshtein, smooth
//! colour histograms under L2, and uniform 3-D vectors as the control).
//!
//! Run with: `cargo run --release --example database_survey`

use distance_permutations::core::dimension::ReferenceProfile;
use distance_permutations::core::survey::{survey_database, SurveyConfig};
use distance_permutations::datasets::dictionary::{generate_words, language_profiles};
use distance_permutations::datasets::{colors, uniform_unit_cube};
use distance_permutations::metric::{Levenshtein, L2};

fn main() {
    let n = 10_000;
    let config = SurveyConfig {
        ks: vec![4, 8, 12],
        seed: 7,
        rho_pairs: 10_000,
        // A reference curve at k = 12 enables the fractional dimension
        // estimate for the vector databases.
        reference: Some(ReferenceProfile::build(12, n, 8, 3, 99, 8)),
    };

    println!("=== uniform 3-D control ===");
    let uniform = uniform_unit_cube(n, 3, 1);
    let report = survey_database(&L2, &uniform, &config);
    println!("{report}");
    // Sanity: the control should read back as ≈ 3-dimensional.
    if let Some(d) = report.dimension_estimate {
        assert!((d - 3.0).abs() < 1.0, "uniform 3-D estimated at {d}");
    }

    println!("=== colour histograms (112-dim embedding, low effective dimension) ===");
    let hists = colors::generate_histograms(n, 2);
    let report = survey_database(&L2, &hists, &config);
    println!("{report}");

    println!("=== english dictionary under Levenshtein ===");
    let profiles = language_profiles();
    let english = profiles.iter().find(|p| p.name == "english").expect("profile");
    let words = generate_words(english, n, 3);
    let report = survey_database(&Levenshtein, &words, &config);
    println!("{report}");

    println!("reading the reports:");
    println!("* `codebook` column ≪ `naive` column = the paper's storage win;");
    println!("* `huffman` within one bit of `entropy` = §4's sophisticated structure;");
    println!("* `minEd` grows with k toward the database's effective dimension;");
    println!("* the histogram database needs far fewer bits than its 112 axes suggest.");
}
