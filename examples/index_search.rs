//! Proximity search over a dictionary with the paper's index family:
//! build the `distperm` index on a synthetic word list under edit
//! distance, run k-NN queries, and compare metric-evaluation costs with
//! LAESA, iAESA and a linear scan — the §1 storyline (AESA → LAESA →
//! distance permutations) on live data.
//!
//! Costs come from the unified query API: every index serves through a
//! `ProximityIndex` searcher session whose answers carry native
//! `QueryStats`, so no counting wrapper is involved.
//!
//! Run with: `cargo run --release --example index_search`

use distance_permutations::datasets::dictionary::{generate_words, language_profiles};
use distance_permutations::index::laesa::PivotSelection;
use distance_permutations::index::{DistPermIndex, IAesa, Laesa, LinearScan, ProximityIndex};
use distance_permutations::metric::Levenshtein;

fn main() {
    let n = 3_000;
    let k = 12;
    let profiles = language_profiles();
    let words = generate_words(&profiles[1], n, 7); // synthetic English
    let queries = generate_words(&profiles[1], 40, 8);

    println!("database: {n} synthetic English words, Levenshtein metric, k = {k} sites\n");

    // Ground truth.
    let scan = LinearScan::new(Levenshtein, words.clone());

    // distperm: permutations only — the paper's storage-light index.
    let dp = DistPermIndex::build(Levenshtein, words.clone(), k, PivotSelection::MaxMin);
    println!(
        "distperm index: {} distinct permutations across {n} words; codebook id = {} bits/word",
        dp.distinct_permutations(),
        dp.codebook().0.id_bits()
    );

    // LAESA for comparison.
    let laesa = Laesa::build(Levenshtein, words.clone(), k, PivotSelection::MaxMin);
    // iAESA (exact, matrix-backed, permutation-ordered).
    let iaesa = IAesa::build(Levenshtein, words, k, PivotSelection::MaxMin);

    // One reusable searcher session per index — the serving shape.
    let mut dp_session = dp.searcher();
    let mut laesa_session = laesa.searcher();
    let mut iaesa_session = iaesa.searcher();

    let mut dp_evals = 0u64;
    let mut dp_hits = 0usize;
    let mut laesa_evals = 0u64;
    let mut iaesa_evals = 0u64;
    for q in &queries {
        let truth = scan.knn(q, 3);

        let (approx, stats) = dp_session.knn_approx(q, 3, 0.1);
        dp_evals += stats.metric_evals;
        dp_hits += approx.iter().filter(|n| truth.iter().any(|t| t.id == n.id)).count();

        let (exact, stats) = laesa_session.knn(q, 3);
        laesa_evals += stats.metric_evals;
        assert_eq!(exact, truth, "LAESA must be exact");

        let (exact2, stats) = iaesa_session.knn(q, 3);
        iaesa_evals += stats.metric_evals;
        assert_eq!(exact2, truth, "iAESA must be exact");
    }

    let nq = queries.len() as f64;
    println!("\n3-NN query cost (metric evaluations per query, n = {n}):");
    println!("  linear scan:              {n}");
    println!("  LAESA (exact):            {:.0}", laesa_evals as f64 / nq);
    println!("  iAESA (exact):            {:.0}", iaesa_evals as f64 / nq);
    println!(
        "  distperm (10% budget):    {:.0}  recall@3 = {:.2}",
        dp_evals as f64 / nq,
        dp_hits as f64 / (3.0 * nq)
    );

    // Show one query end to end.
    let q = &queries[0];
    let nn = scan.knn(q, 3);
    println!("\nexample query {q:?}:");
    for n in nn {
        println!("  {:<18} distance {}", format!("{:?}", scan.points()[n.id]), n.dist);
    }
}
