//! Proximity search over a dictionary with the paper's index family:
//! build the `distperm` index on a synthetic word list under edit
//! distance, run k-NN queries, and compare metric-evaluation costs with
//! LAESA, iAESA and a linear scan — the §1 storyline (AESA → LAESA →
//! distance permutations) on live data.
//!
//! Run with: `cargo run --release --example index_search`

use distance_permutations::datasets::dictionary::{generate_words, language_profiles};
use distance_permutations::index::laesa::PivotSelection;
use distance_permutations::index::{CountingMetric, DistPermIndex, IAesa, Laesa, LinearScan};
use distance_permutations::metric::Levenshtein;

fn main() {
    let n = 3_000;
    let k = 12;
    let profiles = language_profiles();
    let words = generate_words(&profiles[1], n, 7); // synthetic English
    let queries = generate_words(&profiles[1], 40, 8);

    println!("database: {n} synthetic English words, Levenshtein metric, k = {k} sites\n");

    // Ground truth.
    let scan = LinearScan::new(words.clone());

    // distperm: permutations only — the paper's storage-light index.
    let dp = DistPermIndex::build(
        CountingMetric::new(Levenshtein),
        words.clone(),
        k,
        PivotSelection::MaxMin,
    );
    println!(
        "distperm index: {} distinct permutations across {n} words; codebook id = {} bits/word",
        dp.distinct_permutations(),
        dp.codebook().0.id_bits()
    );

    // LAESA for comparison.
    let laesa =
        Laesa::build(CountingMetric::new(Levenshtein), words.clone(), k, PivotSelection::MaxMin);
    // iAESA (exact, matrix-backed, permutation-ordered).
    let iaesa =
        IAesa::build(CountingMetric::new(Levenshtein), words.clone(), k, PivotSelection::MaxMin);

    let mut dp_evals = 0u64;
    let mut dp_hits = 0usize;
    let mut laesa_evals = 0u64;
    let mut iaesa_evals = 0u64;
    for q in &queries {
        let truth = scan.knn(&Levenshtein, q, 3);

        dp.metric().reset();
        let approx = dp.knn_approx(q, 3, 0.1);
        dp_evals += dp.metric().count();
        dp_hits += approx.iter().filter(|n| truth.iter().any(|t| t.id == n.id)).count();

        laesa.metric().reset();
        let exact = laesa.knn(q, 3);
        laesa_evals += laesa.metric().count();
        assert_eq!(exact, truth, "LAESA must be exact");

        iaesa.metric().reset();
        let exact2 = iaesa.knn(q, 3);
        iaesa_evals += iaesa.metric().count();
        assert_eq!(exact2, truth, "iAESA must be exact");
    }

    let nq = queries.len() as f64;
    println!("\n3-NN query cost (metric evaluations per query, n = {n}):");
    println!("  linear scan:              {n}");
    println!("  LAESA (exact):            {:.0}", laesa_evals as f64 / nq);
    println!("  iAESA (exact):            {:.0}", iaesa_evals as f64 / nq);
    println!(
        "  distperm (10% budget):    {:.0}  recall@3 = {:.2}",
        dp_evals as f64 / nq,
        dp_hits as f64 / (3.0 * nq)
    );

    // Show one query end to end.
    let q = &queries[0];
    let nn = scan.knn(&Levenshtein, q, 3);
    println!("\nexample query {q:?}:");
    for n in nn {
        println!("  {:<18} distance {}", format!("{:?}", scan.points()[n.id]), n.dist);
    }
}
