//! Build-by-spec and parallel batch serving through the unified
//! proximity-query API.
//!
//! The workflow a query server would run:
//!
//! 1. parse an index name (`IndexSpec::parse("laesa:16")`) and build it
//!    over the database with `AnyIndex::build` — no per-type dispatch;
//! 2. serve a batch of queries with `serve::query_batch_parallel`:
//!    scoped worker threads, one `Searcher` session per worker,
//!    deterministic output order, native `QueryStats` per answer;
//! 3. compare against the flat-storage engine (`FlatDistPermIndex`),
//!    which serves `&[f64]` rows through the same trait surface.
//!
//! Run with: `cargo run --release --example parallel_serving`

use distance_permutations::datasets::{uniform_unit_cube, VectorSet};
use distance_permutations::index::laesa::PivotSelection;
use distance_permutations::index::serve::{
    query_batch, query_batch_parallel, total_stats, Request,
};
use distance_permutations::index::{AnyIndex, FlatDistPermIndex, IndexSpec};
use distance_permutations::metric::L2;
use std::time::Instant;

fn main() {
    let n = 20_000;
    let d = 6;
    let batch = 256;
    let threads = 8;
    let points = uniform_unit_cube(n, d, 1);
    let queries = uniform_unit_cube(batch, d, 2);

    println!("database: {n} uniform points in [0,1]^{d}; batch of {batch} 3-NN queries\n");

    // 1. Build any index by name.  Swap the spec string freely:
    //    "vptree", "laesa:16", "distperm:12", "ghtree", …
    for spec_name in ["vptree", "laesa:16", "distperm:12"] {
        let spec = IndexSpec::parse(spec_name).expect("valid spec");
        let index = AnyIndex::build(spec, L2, points.clone(), PivotSelection::MaxMin)
            .expect("generic index");

        // 2. Serve the batch sequentially and in parallel; answers and
        //    stats are bit-identical, only wall-clock changes.
        let t0 = Instant::now();
        let seq = query_batch(&index, &queries, Request::Knn { k: 3 });
        let seq_time = t0.elapsed();
        let t0 = Instant::now();
        let par = query_batch_parallel(&index, &queries, Request::Knn { k: 3 }, threads);
        let par_time = t0.elapsed();
        assert_eq!(seq, par, "parallel serving must be bit-identical");

        let stats = total_stats(&seq);
        println!(
            "{:<12} {:>9.1} evals/query   sequential {:>7.1?}   {} threads {:>7.1?}",
            spec.name(),
            stats.metric_evals as f64 / batch as f64,
            seq_time,
            threads,
            par_time,
        );
    }

    // 3. The flat engine serves &[f64] rows through the same traits.
    let flat = FlatDistPermIndex::build(
        L2,
        VectorSet::from_nested(&points),
        12,
        PivotSelection::MaxMin,
        threads,
    );
    let qset = VectorSet::from_nested(&queries);
    let rows: Vec<&[f64]> = qset.rows().collect();
    let t0 = Instant::now();
    let responses =
        query_batch_parallel::<[f64], _, _>(&flat, &rows, Request::Knn { k: 3 }, threads);
    let elapsed = t0.elapsed();
    let stats = total_stats(&responses);
    println!(
        "{:<12} {:>9.1} evals/query   flat rows, {} threads   {:>7.1?}",
        "flatperm:12",
        stats.metric_evals as f64 / batch as f64,
        threads,
        elapsed,
    );

    // Show one served answer end to end.
    let (neighbors, stats) = &responses[0];
    println!("\nfirst query served: {} metric evaluations", stats.metric_evals);
    for nb in neighbors {
        println!("  id {:>5}  distance {:.4}", nb.id, nb.dist.get());
    }
}
