//! Storage-format tour: every physical layout for a permutation column,
//! measured on the same data.
//!
//! The paper's §1/§4 storage argument in runnable form.  For a uniform
//! 3-D database with k = 10 sites we build the permutation column once,
//! then store it four ways:
//!
//! 1. unrestricted rank — ⌈log₂ k!⌉ bits/element (what LAESA-style
//!    reasoning would budget for "a permutation");
//! 2. raw positional packing — k·⌈log₂ k⌉ bits/element (the CFN layout);
//! 3. the paper's codebook — ⌈log₂ N⌉ bits/element where N is the number
//!    of distinct permutations that actually occur (Θ(d log k) in
//!    Euclidean space by Corollary 8);
//! 4. Huffman over the empirical distribution — §4's "more sophisticated
//!    structure", within one bit of the entropy floor.
//!
//! Run with: `cargo run --release --example storage_formats`

use distance_permutations::core::count::count_permutations;
use distance_permutations::datasets::uniform_unit_cube;
use distance_permutations::metric::L2;
use distance_permutations::permutation::huffman::entropy_bits;
use distance_permutations::permutation::{
    distance_permutation, Codebook, HuffmanPermStore, PackedPermStore, Permutation, RawPermStore,
};
use distance_permutations::theory::storage::log2_factorial_ceil;

fn main() {
    let (n, d, k) = (100_000usize, 3usize, 10usize);
    let db = uniform_unit_cube(n, d, 2024);
    let sites: Vec<Vec<f64>> = db[..k].to_vec();

    // The permutation column.
    let perms: Vec<Permutation> = db.iter().map(|y| distance_permutation(&L2, &sites, y)).collect();
    let report = count_permutations(&L2, &sites, &db);
    println!("database: n = {n}, d = {d}, k = {k}");
    println!(
        "distinct permutations N = {} (Theorem 7 ceiling N_{{3,2}}(10) = {})",
        report.distinct,
        distance_permutations::theory::n_euclidean(3, 10).unwrap()
    );

    // 1. Unrestricted rank.
    let naive_bits = log2_factorial_ceil(k as u32);
    // 2. Raw positional packing.
    let raw = RawPermStore::from_permutations(k, &perms);
    // 3. Codebook ids.
    let packed = PackedPermStore::from_permutations(&perms);
    // 4. Huffman.
    let huff = HuffmanPermStore::from_permutations(&perms);

    // The entropy floor of the observed distribution.
    let codebook: Codebook = perms.iter().copied().collect();
    let mut freqs = vec![0u64; codebook.len()];
    for p in &perms {
        freqs[codebook.id_of(p).unwrap() as usize] += 1;
    }
    let h = entropy_bits(&freqs);

    println!("\nbits per element:");
    println!("  unrestricted rank  ⌈log2 k!⌉ : {naive_bits:>8}");
    println!("  raw positional     k⌈log2 k⌉ : {:>8}", raw.bits_per_element());
    println!("  codebook ids       ⌈log2 N⌉  : {:>8}", packed.bits_per_element());
    println!("  huffman (mean)               : {:>11.2}", huff.mean_bits());
    println!("  entropy floor                : {h:>11.2}");

    println!("\ntotal heap bytes (column + tables):");
    println!("  raw positional : {:>12}", raw.heap_bytes());
    println!("  codebook       : {:>12}", packed.heap_bytes());
    println!("  huffman        : {:>12}", huff.heap_bytes());

    // All three stores decode to the same column.
    assert!(raw.iter().eq(perms.iter().copied()));
    assert!(packed.iter().eq(perms.iter().copied()));
    assert!(huff.iter().eq(perms.iter().copied()));
    println!("\nall layouts round-trip the {n}-element column exactly");

    // The paper's claim in one line: once the space is low-dimensional,
    // the codebook beats the unrestricted budget.
    assert!(packed.bits_per_element() < naive_bits);
    println!(
        "codebook saves {:.1}% over the unrestricted-permutation budget",
        100.0 * (1.0 - f64::from(packed.bits_per_element()) / f64::from(naive_bits))
    );
}
