//! Quickstart: compute distance permutations, count the distinct ones,
//! compare against the paper's exact Euclidean maximum, and see the
//! storage win.
//!
//! Run with: `cargo run --release --example quickstart`

use distance_permutations::core::count::count_permutations;
use distance_permutations::core::spaces::{theoretical_max, SpaceKind};
use distance_permutations::datasets::uniform_unit_cube;
use distance_permutations::index::laesa::PivotSelection;
use distance_permutations::index::DistPermIndex;
use distance_permutations::metric::L2;
use distance_permutations::permutation::distance_permutation;
use distance_permutations::theory::storage::log2_factorial_ceil;

fn main() {
    // A database of 50,000 uniform points in the plane and k = 8 sites.
    let db = uniform_unit_cube(50_000, 2, 42);
    let sites: Vec<Vec<f64>> = db[..8].to_vec();

    // The distance permutation of one point: sites ordered by distance.
    let y = &db[100];
    let perm = distance_permutation(&L2, &sites, y);
    println!(
        "distance permutation of db[100]: {perm} (paper notation {})",
        perm.display_one_based()
    );

    // The paper's central quantity: how many distinct permutations occur?
    let report = count_permutations(&L2, &sites, &db);
    let max = theoretical_max(SpaceKind::Euclidean { d: 2 }, 8).expect("small");
    println!(
        "distinct permutations: {} of a theoretical maximum N_2,2(8) = {max} \
         (k! = 40320); mean occupancy {:.1} points/cell",
        report.distinct, report.mean_occupancy
    );
    assert!(report.distinct as u128 <= max);

    // The storage consequence (§1/§4): store one small codebook id per
    // element instead of a full permutation.
    let idx = DistPermIndex::build(L2, db, 8, PivotSelection::Prefix);
    let (cb, _ids) = idx.codebook();
    println!(
        "storage: {} bits/element as codebook ids vs {} bits as an \
         unrestricted permutation rank",
        cb.id_bits(),
        log2_factorial_ceil(8)
    );
}
