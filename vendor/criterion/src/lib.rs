//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `Throughput`, and the
//! `criterion_group!` / `criterion_main!` macros — backed by a simple
//! median-of-samples wall-clock harness instead of criterion's full
//! statistical machinery.
//!
//! Behavioural notes:
//!
//! * Each benchmark runs a short warm-up, then `sample_size` timed
//!   samples; the median per-iteration time is reported on stdout.
//! * Set `CRITERION_JSON=<path>` to append one JSON line per benchmark
//!   (`{"name": …, "median_ns": …, "throughput_elems": …}`) — the
//!   workspace's `BENCH_*.json` baselines are recorded this way.
//! * A single positional CLI argument filters benchmarks by substring
//!   (like criterion); `--bench`/`--test` flags from cargo are ignored.

use std::io::Write as _;
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    filter: Option<String>,
    json_path: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            // cargo passes --bench; a user-supplied bare token filters.
            if !arg.starts_with('-') {
                filter = Some(arg);
            }
        }
        Criterion { filter, json_path: std::env::var("CRITERION_JSON").ok() }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 20, throughput: None }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        run_benchmark(self, &name, 20, None, f);
        self
    }
}

/// A group of benchmarks sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Annotates the group's per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_benchmark(self.criterion, &full, self.sample_size, self.throughput, f);
        self
    }

    /// Finishes the group (a no-op in this harness; kept for API parity).
    pub fn finish(self) {}
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` back-to-back invocations of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F>(
    criterion: &Criterion,
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    if let Some(filter) = &criterion.filter {
        if !name.contains(filter.as_str()) {
            return;
        }
    }
    // Calibrate iterations so one sample lasts ≳ 10 ms (or a single
    // iteration, whichever is longer), capped to keep total time sane.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut b);
    let once = b.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(10);
    let iters = if once >= target {
        1
    } else {
        (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64
    };
    let mut samples_ns: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        samples_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    samples_ns.sort_by(f64::total_cmp);
    let median = samples_ns[samples_ns.len() / 2];
    let (elems, throughput_txt) = match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / (median * 1e-9);
            (Some(n), format!("  {:.3} Melem/s", rate / 1e6))
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / (median * 1e-9);
            (None, format!("  {:.3} MiB/s", rate / (1024.0 * 1024.0)))
        }
        None => (None, String::new()),
    };
    println!("{name:<60} {:>12.1} ns/iter{throughput_txt}", median);
    if let Some(path) = &criterion.json_path {
        let line = match elems {
            Some(n) => format!(
                "{{\"name\":\"{name}\",\"median_ns\":{median:.1},\"throughput_elems\":{n}}}\n"
            ),
            None => format!("{{\"name\":\"{name}\",\"median_ns\":{median:.1}}}\n"),
        };
        if let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
            let _ = file.write_all(line.as_bytes());
        }
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = super::Criterion { filter: None, json_path: None };
        let mut ran = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
        });
        let mut group = c.benchmark_group("grp");
        group.sample_size(3).throughput(super::Throughput::Elements(10));
        group.bench_function("inner", |b| {
            ran += 1;
            b.iter(|| std::hint::black_box(2 * 2));
        });
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = super::Criterion { filter: Some("nomatch".into()), json_path: None };
        let mut ran = false;
        c.bench_function("other", |b| {
            ran = true;
            b.iter(|| ());
        });
        assert!(!ran);
    }
}
