//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides exactly the surface the workspace uses:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded via
//!   SplitMix64 (the same construction the real `rand` documents for
//!   `seed_from_u64`, though the streams differ — all workspace results
//!   are keyed to *this* stream and are reproducible across platforms);
//! * [`SeedableRng::seed_from_u64`];
//! * [`RngCore`] (`next_u32` / `next_u64` / `fill_bytes`);
//! * [`RngExt`] — `random`, `random_range`, `random_bool`, the subset of
//!   the real crate's `Rng` extension trait this workspace calls.
//!
//! Statistical quality matters here: the workspace's tests assert moments
//! of generated distributions and recall rates of randomized index
//! structures.  xoshiro256++ passes BigCrush and is more than adequate.

/// Core generator interface: a source of uniformly distributed bits.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from an `RngCore` (the real crate's
/// `StandardUniform` distribution, folded into the type).
pub trait UniformSample: Sized {
    /// Draws one uniform sample.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl UniformSample for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UniformSample for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl UniformSample for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! uniform_int {
    ($($t:ty => $next:ident),* $(,)?) => {$(
        impl UniformSample for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$next() as $t
            }
        }
    )*};
}

uniform_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, i8 => next_u32,
             i16 => next_u32, i32 => next_u32, u64 => next_u64, i64 => next_u64,
             usize => next_u64, isize => next_u64);

impl UniformSample for u128 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

/// Types uniformly samplable from a bounded range (mirrors the real
/// crate's `SampleUniform`; a single blanket [`SampleRange`] impl keeps
/// `rng.random_range(0..4)` inferring the target type from context).
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform sample from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`).
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! uniform_range_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let width = (hi as i128)
                    .wrapping_sub(lo as i128) as u128
                    + u128::from(inclusive);
                let draw = widening_mul_hi(rng, width);
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

uniform_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform integer in `0..width` via 64×64→128 multiply-shift (width ≤ 2⁶⁴).
#[inline]
fn widening_mul_hi<R: RngCore + ?Sized>(rng: &mut R, width: u128) -> u64 {
    debug_assert!(width > 0 && width <= u128::from(u64::MAX) + 1);
    ((u128::from(rng.next_u64()) * width) >> 64) as u64
}

impl SampleUniform for f64 {
    #[inline]
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self {
        let u = if inclusive {
            (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64)
        } else {
            f64::sample(rng)
        };
        lo + (hi - lo) * u
    }
}

/// Ranges usable with [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in random_range");
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "empty range in random_range");
        T::sample_between(start, end, true, rng)
    }
}

/// The convenience sampling methods the workspace uses (`rand`'s `Rng`
/// extension trait, renamed to avoid implying full compatibility).
pub trait RngExt: RngCore {
    /// A uniform sample of `T` (reals in [0, 1), integers over the full
    /// domain).
    #[inline]
    fn random<T: UniformSample>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform sample from `range`.
    #[inline]
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// True with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in [0, 1].
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0,1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator.
    ///
    /// Not the real crate's ChaCha12-based `StdRng`; streams differ, but
    /// every use in this workspace only requires determinism-in-seed and
    /// statistical quality, both of which hold.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the standard seeding recipe for
            // xoshiro family generators.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngCore, RngExt, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_hit_bounds_and_stay_inside() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let v = rng.random_range(0..4usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&b| b), "{seen:?}");
        for _ in 0..1000 {
            let v = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let f = rng.random_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn random_bool_tracks_p() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "{hits}");
    }
}
