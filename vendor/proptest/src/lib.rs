//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace's property tests use:
//! the [`proptest!`] macro, [`Strategy`] with `prop_map` / `prop_perturb`,
//! numeric-range and regex-lite string strategies, `Just`, `any`, tuple
//! strategies, and `prop::collection::{vec, btree_set}`.
//!
//! Differences from the real crate, deliberately accepted for an offline
//! build:
//!
//! * **No shrinking** — a failing case panics with the assertion message;
//!   inputs are deterministic per test (seeded from the test's path), so
//!   failures reproduce exactly under `cargo test`.
//! * String strategies support the pattern subset actually used:
//!   sequences of literal characters and character classes `[a-z…]`, each
//!   optionally repeated `{m}` or `{m,n}`.
//! * `ProptestConfig` carries only `cases`.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Deterministic RNG handed to strategies (and to `prop_perturb`
/// closures).
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// A generator seeded deterministically from `label` (the test path).
    pub fn deterministic(label: &str) -> Self {
        // FNV-1a over the label: stable across runs and platforms.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { inner: StdRng::seed_from_u64(h) }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// An independent generator split off this one.
    pub fn split(&mut self) -> TestRng {
        TestRng { inner: StdRng::seed_from_u64(self.next_u64()) }
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    fn below_u128(&mut self, n: u128) -> u128 {
        debug_assert!(n > 0);
        let draw = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
        draw % n
    }
}

/// Marker returned by [`prop_assume!`] to skip the current case.
#[derive(Debug, Clone, Copy)]
pub struct TestCaseSkip;

/// Run configuration for a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128 }
    }
}

/// A generator of random values of type `Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Maps generated values through `f`, which additionally receives a
    /// private RNG.
    fn prop_perturb<U, F: Fn(Self::Value, TestRng) -> U>(self, f: F) -> Perturb<Self, F>
    where
        Self: Sized,
    {
        Perturb { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_perturb`].
pub struct Perturb<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value, TestRng) -> U> Strategy for Perturb<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        let v = self.inner.sample(rng);
        let child = rng.split();
        (self.f)(v, child)
    }
}

/// A strategy producing a fixed value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "anything goes" strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, wide dynamic range.
        let mantissa = rng.next_f64() * 2.0 - 1.0;
        let exp = (rng.below(601) as i32 - 300) as f64;
        mantissa * exp.exp2()
    }
}

/// See [`Arbitrary`].
pub struct Any<T>(core::marker::PhantomData<T>);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let draw = rng.below_u128(width);
                (self.start as i128).wrapping_add(draw as i128) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let width = (end as i128).wrapping_sub(start as i128) as u128 + 1;
                let draw = rng.below_u128(width);
                (start as i128).wrapping_add(draw as i128) as $t
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<u128> {
    type Value = u128;

    fn sample(&self, rng: &mut TestRng) -> u128 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below_u128(self.end - self.start)
    }
}

impl Strategy for core::ops::Range<i128> {
    type Value = i128;

    fn sample(&self, rng: &mut TestRng) -> i128 {
        assert!(self.start < self.end, "empty range strategy");
        let width = self.end.wrapping_sub(self.start) as u128;
        self.start.wrapping_add(rng.below_u128(width) as i128)
    }
}

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range strategy");
        start + (end - start) * rng.next_f64()
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),* $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);

/// Regex-lite string strategy: sequences of literals and character
/// classes, each optionally repeated `{m}` / `{m,n}`.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let pattern = parse_pattern(self);
        let mut out = String::new();
        for atom in &pattern {
            let n = if atom.max > atom.min {
                atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize
            } else {
                atom.min
            };
            for _ in 0..n {
                let i = rng.below(atom.chars.len() as u64) as usize;
                out.push(atom.chars[i]);
            }
        }
        out
    }
}

struct PatternAtom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<PatternAtom> {
    let mut atoms = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let set: Vec<char> = match c {
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    match chars.next() {
                        Some(']') => break,
                        Some('-') if prev.is_some() && chars.peek() != Some(&']') => {
                            let lo = prev.take().expect("checked") as u32 + 1;
                            let hi = chars.next().expect("unterminated class range") as u32;
                            for u in lo..=hi {
                                set.push(char::from_u32(u).expect("valid class range"));
                            }
                        }
                        Some(other) => {
                            set.push(other);
                            prev = Some(other);
                        }
                        None => panic!("unterminated character class in {pattern:?}"),
                    }
                }
                set
            }
            '\\' => vec![chars.next().expect("dangling escape")],
            literal => vec![literal],
        };
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for r in chars.by_ref() {
                if r == '}' {
                    break;
                }
                spec.push(r);
            }
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("repeat lower bound"),
                    hi.trim().parse().expect("repeat upper bound"),
                ),
                None => {
                    let n = spec.trim().parse().expect("repeat count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(!set.is_empty() && min <= max, "bad pattern {pattern:?}");
        atoms.push(PatternAtom { chars: set, min, max });
    }
    atoms
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;

    /// Size specification: an exact size or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    impl SizeRange {
        fn pick(self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo) as u64) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` of exactly the drawn size
    /// (distinct elements; panics if the element domain cannot supply
    /// enough distinct values).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.pick(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < n {
                set.insert(self.element.sample(rng));
                attempts += 1;
                assert!(
                    attempts < 100 * (n + 1),
                    "btree_set strategy cannot reach {n} distinct elements"
                );
            }
            set
        }
    }
}

/// Convenience alias module matching `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    //! The glob-import surface (`use proptest::prelude::*`).

    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestRng,
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// Skips the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseSkip);
        }
    };
}

/// Declares deterministic random-input tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn holds(x in 0u64..100, v in prop::collection::vec(0i32..5, 1..4)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        #[test]
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for _case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let _outcome: ::core::result::Result<(), $crate::TestCaseSkip> =
                    (move || {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_pattern_generates_within_class_and_length() {
        let mut rng = TestRng::deterministic("pattern");
        for _ in 0..200 {
            let s = Strategy::sample(&"[a-c]{0,10}", &mut rng);
            assert!(s.len() <= 10);
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn ranges_and_collections_sample_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..100 {
            let x = Strategy::sample(&(-50i64..50), &mut rng);
            assert!((-50..50).contains(&x));
            let v = Strategy::sample(&collection::vec(0.0f64..1.0, 2..5), &mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|f| (0.0..1.0).contains(f)));
            let s = Strategy::sample(&collection::btree_set(0u32..100, 5usize), &mut rng);
            assert_eq!(s.len(), 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_smoke(x in 0u64..10, pair in (0i32..3, 0i32..3)) {
            prop_assume!(x != 3);
            prop_assert!(x < 10);
            prop_assert_eq!(pair.0 - pair.0, 0);
        }
    }

    #[test]
    fn perturb_and_map_compose() {
        let mut rng = TestRng::deterministic("combinators");
        let strat = Just(5usize)
            .prop_map(|n| n * 2)
            .prop_perturb(|n, mut r| n + (r.next_u64() % 2) as usize);
        for _ in 0..10 {
            let v = Strategy::sample(&strat, &mut rng);
            assert!(v == 10 || v == 11);
        }
    }
}
