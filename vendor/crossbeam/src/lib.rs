//! Offline stand-in for the `crossbeam` crate.
//!
//! Only [`thread::scope`] is provided — the workspace's parallel counting
//! kernels use crossbeam-style scoped threads, which std has supported
//! natively since 1.63.  This shim keeps the crossbeam calling convention
//! (`scope(|s| …)` returning `Result`, spawn closures taking a scope
//! argument) while delegating to [`std::thread::scope`].

pub mod thread {
    //! Scoped threads in the crossbeam calling convention.

    use std::marker::PhantomData;

    /// Error type of [`scope`]: the payload of a panicked child thread.
    ///
    /// With std scopes a child panic propagates when its handle is joined
    /// (or at scope exit), so `scope` itself only returns `Ok` — matching
    /// crossbeam's behaviour of surfacing child panics through
    /// [`ScopedJoinHandle::join`].
    pub type ScopeError = Box<dyn std::any::Any + Send + 'static>;

    /// A scope handle; `spawn` borrows it like crossbeam's `Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
        _marker: PhantomData<&'env ()>,
    }

    /// Handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, yielding its result or the
        /// panic payload.
        pub fn join(self) -> Result<T, ScopeError> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread.  The closure receives the scope (so
        /// crossbeam-style `|_|` closures work) and may borrow from the
        /// enclosing environment.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            ScopedJoinHandle {
                inner: inner_scope.spawn(move || {
                    let scope = Scope { inner: inner_scope, _marker: PhantomData };
                    f(&scope)
                }),
            }
        }
    }

    /// Creates a scope for spawning threads that may borrow local data.
    ///
    /// All spawned threads are joined before `scope` returns.  Returns
    /// `Ok(result_of_closure)`; child panics surface through
    /// [`ScopedJoinHandle::join`] exactly as with crossbeam.
    pub fn scope<'env, F, R>(f: F) -> Result<R, ScopeError>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| {
            let wrapper = Scope { inner: s, _marker: PhantomData };
            f(&wrapper)
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4, 5, 6, 7, 8];
        let mut results = Vec::new();
        crate::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(3)
                .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            for h in handles {
                results.push(h.join().expect("worker"));
            }
        })
        .expect("scope");
        assert_eq!(results.iter().sum::<u64>(), 36);
    }

    #[test]
    fn nested_spawn_through_scope_argument() {
        let out = crate::thread::scope(|scope| {
            let h = scope.spawn(|inner| {
                let h2 = inner.spawn(|_| 21u32);
                h2.join().expect("inner") * 2
            });
            h.join().expect("outer")
        })
        .expect("scope");
        assert_eq!(out, 42);
    }
}
