#!/usr/bin/env bash
# Workspace gate: formatting, lints, tests, and bench compilation.
#
# Run from the repository root.  Mirrors what a CI job would run; every
# PR should pass this locally before review.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --release

echo "== cargo test --workspace"
cargo test --workspace -q

# The survey and kernel equivalence suites assert bit-for-bit
# floating-point and integer-overflow behaviour; debug-only runs have
# missed overflow-class bugs before, and the strip-mined kernel tiles
# only vectorize under optimized codegen — which is exactly where their
# bit-identity could break — so both must also pass under release.
echo "== cargo test --release --test survey_equivalence (release-mode property run)"
cargo test -p distance-permutations --release -q --test survey_equivalence

echo "== cargo test --release --test kernel_equivalence (release-mode property run)"
cargo test -p distance-permutations --release -q --test kernel_equivalence

echo "== cargo doc --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== cargo bench --no-run (bench code must keep compiling)"
cargo bench -p dp-bench --no-run

echo "All checks passed."
