#!/usr/bin/env bash
# Workspace gate: formatting, lints, tests, and bench compilation.
#
# Run from the repository root.  Mirrors what a CI job would run; every
# PR should pass this locally before review.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

# dplint runs before clippy so workspace-invariant findings (bit-identity
# float rules, panic boundary, atomic-ordering proofs, offline-dep audit,
# bench citations) surface ahead of generic lint noise.
echo "== dplint (workspace invariant linter)"
cargo run -q -p dp-analyze --bin dplint

echo "== cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --workspace --release"
# --workspace so the `distperm` binary exists for the serve smoke below.
cargo build --workspace --release

echo "== cargo test --workspace"
cargo test --workspace -q

# The survey and kernel equivalence suites assert bit-for-bit
# floating-point and integer-overflow behaviour; debug-only runs have
# missed overflow-class bugs before, and the strip-mined kernel tiles
# only vectorize under optimized codegen — which is exactly where their
# bit-identity could break — so both must also pass under release.
# survey_equivalence covers both packed-key width seams (k = 12 → 13
# and k = 25 → 26), so the u128 wide path gets release coverage here.
echo "== cargo test --release --test survey_equivalence (release-mode property run)"
cargo test -p distance-permutations --release -q --test survey_equivalence

echo "== cargo test --release --test kernel_equivalence (release-mode property run)"
cargo test -p distance-permutations --release -q --test kernel_equivalence

# The fused rank+pack tile and the sharded streaming counter are pure
# optimizations whose contract is bit-identity with the phase-separated
# and buffer-everything engines; the fused tile only vectorizes under
# optimized codegen and the suite's million-point memory-bound run is
# only tractable there, so it runs under release.
echo "== cargo test --release --test sharded_equivalence (release-mode property run)"
cargo test -p distance-permutations --release -q --test sharded_equivalence

# The radix sorter's contract is exact equality with sort_unstable at
# both key widths (u64 and u128 since the width-generic refactor); its
# histogram/scatter loops only vectorize under optimized codegen, so the
# adversarial-distribution property suite must also pass under release.
echo "== cargo test --release --test radix_properties (release-mode property run)"
cargo test -p dp-permutation --release -q --test radix_properties

# The serving robustness suites pin panic isolation and bit-identity of
# the work-stealing engine against the strict batch path; catch_unwind
# and the degraded-path float behaviour must hold under optimized
# codegen, so both suites also run under release.
echo "== cargo test --release --test serve_robustness (release-mode fault-injection run)"
cargo test -p distance-permutations --release -q --test serve_robustness

echo "== cargo test --release --test protocol_robustness (release-mode adversarial-input run)"
cargo test -p dp-index --release -q --test protocol_robustness

# The store reader's totality promise (typed errors on truncation at
# every prefix and corruption at every offset, bit-identical reload)
# must hold under optimized codegen — bounds checks and checksum loops
# are exactly what release builds transform — so both store suites also
# run under release.
echo "== cargo test --release --test store_robustness (release-mode adversarial-bytes run)"
cargo test -p distance-permutations --release -q --test store_robustness

echo "== cargo test --release --test store_roundtrip (release-mode bit-identity run)"
cargo test -p distance-permutations --release -q --test store_roundtrip

# End-to-end smoke of `distperm serve`: generate a tiny database, pipe a
# batch through stdin, and require a served batch plus a clean EOF
# shutdown (`bye`) from the release binary.
echo "== distperm serve smoke (stdin pipe, clean EOF shutdown)"
SERVE_TMP=$(mktemp -d)
trap 'rm -rf "$SERVE_TMP"' EXIT
./target/release/distperm generate --kind uniform --out "$SERVE_TMP/db.vec" --n 200 --dim 4 \
    --seed 7 > /dev/null
SERVE_OUT=$(printf 'begin smoke\nknn 3 0.5 0.5 0.5 0.5\nrange 0.4 0.1 0.9 0.2 0.8\nend\n' \
    | ./target/release/distperm serve --vectors "$SERVE_TMP/db.vec" --index distperm:4 \
        --threads 2)
echo "$SERVE_OUT" | grep -q '^done smoke ok=2 degraded=0 failed=0' || {
    echo "serve smoke: batch was not served cleanly" >&2
    echo "$SERVE_OUT" >&2
    exit 1
}
echo "$SERVE_OUT" | grep -q '^bye batches=1 queries=2 shed=0 errors=0' || {
    echo "serve smoke: missing clean bye line" >&2
    echo "$SERVE_OUT" >&2
    exit 1
}

# ROADMAP bench-baseline validation (formerly a bash/jq loop here) now
# lives in dplint's bench-citations pass, which runs above with real
# file:line:col diagnostics and no jq dependency.

echo "== cargo doc --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== cargo bench --no-run (bench code must keep compiling)"
cargo bench -p dp-bench --no-run

echo "All checks passed."
